package fg

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAutoTunerNilIsOff: the nil tuner is the documented "tuning off"
// object — every method must be callable and inert.
func TestAutoTunerNilIsOff(t *testing.T) {
	tn := NewAutoTuner(AutoTune{})
	if tn != nil {
		t.Fatal("disabled AutoTune produced a live tuner")
	}
	if k := tn.Knob("sort", 2); k != nil {
		t.Error("nil tuner handed out a knob")
	}
	var k *Knob
	if w := k.Workers(); w != 0 {
		t.Errorf("nil knob Workers = %d, want 0 (all cores)", w)
	}
	if n := tn.Adjustments(); n != 0 {
		t.Errorf("nil tuner Adjustments = %d", n)
	}
	tn.OnAdjust(func(string, int, int) {})
	stop := tn.Tune(nil)
	stop()
	if s := tn.String(); s != "autotune: off" {
		t.Errorf("nil tuner String = %q", s)
	}
}

// TestAutoTuneEnabled: the zero value is disabled; any set field enables.
func TestAutoTuneEnabled(t *testing.T) {
	if (AutoTune{}).Enabled() {
		t.Error("zero AutoTune reports enabled")
	}
	for _, cfg := range []AutoTune{{Min: 1}, {Max: 8}, {Interval: time.Second}} {
		if !cfg.Enabled() {
			t.Errorf("%+v reports disabled", cfg)
		}
	}
	if !DefaultAutoTune().Enabled() {
		t.Error("DefaultAutoTune reports disabled")
	}
}

// TestKnobInitialClamping: initial worker counts are clamped to [Min, Max],
// with <= 0 meaning "all cores" (Max), and the same name returns the same
// knob.
func TestKnobInitialClamping(t *testing.T) {
	tn := NewAutoTuner(AutoTune{Min: 2, Max: 4, Interval: time.Second})
	cases := []struct {
		initial, want int
	}{{0, 4}, {1, 2}, {3, 3}, {99, 4}, {-5, 4}}
	for i, c := range cases {
		k := tn.Knob(string(rune('a'+i)), c.initial)
		if got := k.Workers(); got != c.want {
			t.Errorf("Knob(initial=%d).Workers = %d, want %d", c.initial, got, c.want)
		}
	}
	if tn.Knob("a", 3) != tn.Knob("a", 99) {
		t.Error("same knob name returned distinct knobs")
	}
}

// TestAutoTunerRaisesBottleneckWorkers: a pipeline whose wall clock is
// governed by one busy stage must see that stage's knob raised. The stage
// reads its knob every round — exactly how dsort and colsort kernels are
// wired — and the pipeline stops once the tuner has acted.
func TestAutoTunerRaisesBottleneckWorkers(t *testing.T) {
	tn := NewAutoTuner(AutoTune{Min: 1, Max: 4, Interval: 2 * time.Millisecond})
	k := tn.Knob("kernel", 1)
	if k.Workers() != 1 {
		t.Fatalf("knob starts at %d, want 1", k.Workers())
	}

	nw := NewNetwork("tune")
	p := nw.AddPipeline("main", Buffers(2), BufferBytes(8), Unlimited())
	p.AddStage("kernel", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(time.Millisecond) // near-100% utilization: the bottleneck
		if k.Workers() > 1 {
			p.Stop()
		}
		return nil
	})

	var mu sync.Mutex
	var adjusted []string
	tn.OnAdjust(func(knob string, from, to int) {
		mu.Lock()
		adjusted = append(adjusted, knob)
		mu.Unlock()
	})
	defer tn.Tune(nw)()

	errc := make(chan error, 1)
	go func() { errc <- nw.Run() }()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("tuner never raised the bottleneck knob")
	}
	if w := k.Workers(); w < 2 || w > 4 {
		t.Errorf("knob settled at %d, want within (1, Max=4]", w)
	}
	if tn.Adjustments() == 0 {
		t.Error("Adjustments = 0 after an observed raise")
	}
	mu.Lock()
	defer mu.Unlock()
	var sawKernel bool
	for _, name := range adjusted {
		if name == "kernel" {
			sawKernel = true
		}
	}
	if !sawKernel {
		t.Errorf("OnAdjust never reported the kernel knob; got %v", adjusted)
	}
}

// TestAutoTunerRaisesBuffersWhenPoolDry: a pipeline squeezed to one
// effective buffer keeps its pool empty, which the tuner must read as "give
// it back a buffer" — immediately, no streak required.
func TestAutoTunerRaisesBuffersWhenPoolDry(t *testing.T) {
	tn := NewAutoTuner(AutoTune{Min: 1, Max: 1, Interval: 2 * time.Millisecond})

	nw := NewNetwork("tunebuf")
	p := nw.AddPipeline("main", Buffers(4), BufferBytes(8), Unlimited())
	p.SetEffectiveBuffers(1)
	p.AddStage("slow", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(time.Millisecond)
		if p.EffectiveBuffers() > 1 {
			p.Stop()
		}
		return nil
	})
	defer tn.Tune(nw)()

	errc := make(chan error, 1)
	go func() { errc <- nw.Run() }()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("tuner never re-injected buffers into a dry pool")
	}
	if eff := p.EffectiveBuffers(); eff < 2 {
		t.Errorf("EffectiveBuffers settled at %d, want > 1", eff)
	}
	if tn.Adjustments() == 0 {
		t.Error("Adjustments = 0 after an observed buffer raise")
	}
}

// TestAutoTunerString renders bounds and knobs.
func TestAutoTunerString(t *testing.T) {
	tn := NewAutoTuner(AutoTune{Min: 1, Max: 2, Interval: time.Second})
	tn.Knob("sort", 2)
	s := tn.String()
	if !strings.Contains(s, "[1,2]") || !strings.Contains(s, "sort=2") {
		t.Errorf("String = %q, want bounds and knob settings", s)
	}
}
