package fg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// buildForkNet builds a pipeline that routes even rounds through a doubling
// branch and odd rounds through a +1000 branch, collecting the results.
func buildForkNet(t *testing.T, rounds, buffers int) []uint64 {
	t.Helper()
	nw := NewNetwork("forked")
	p := nw.AddPipeline("main", Buffers(buffers), BufferBytes(8), Rounds(rounds))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error {
		binary.BigEndian.PutUint64(b.Data, uint64(b.Round))
		b.N = 8
		return nil
	})
	fork := p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) {
		return b.Round % 2, nil
	})
	fork.Branch(0).AddStage("double", func(ctx *Ctx, b *Buffer) error {
		v := binary.BigEndian.Uint64(b.Bytes())
		binary.BigEndian.PutUint64(b.Data, 2*v)
		return nil
	})
	fork.Branch(1).AddStage("plus1000", func(ctx *Ctx, b *Buffer) error {
		v := binary.BigEndian.Uint64(b.Bytes())
		binary.BigEndian.PutUint64(b.Data, v+1000)
		return nil
	})
	fork.Join()
	var mu sync.Mutex
	var got []uint64
	p.AddStage("collect", func(ctx *Ctx, b *Buffer) error {
		mu.Lock()
		got = append(got, binary.BigEndian.Uint64(b.Bytes()))
		mu.Unlock()
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestForkJoinRoutesEveryBuffer(t *testing.T) {
	const rounds = 40
	got := buildForkNet(t, rounds, 3)
	if len(got) != rounds {
		t.Fatalf("collected %d buffers, want %d", len(got), rounds)
	}
	want := map[uint64]bool{}
	for r := 0; r < rounds; r++ {
		if r%2 == 0 {
			want[uint64(2*r)] = true
		} else {
			want[uint64(r+1000)] = true
		}
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("unexpected value %d after join", v)
		}
		delete(want, v)
	}
	if len(want) != 0 {
		t.Errorf("missing values after join: %v", want)
	}
}

func TestForkJoinSingleBuffer(t *testing.T) {
	got := buildForkNet(t, 10, 1)
	if len(got) != 10 {
		t.Fatalf("collected %d buffers with pool of 1, want 10", len(got))
	}
}

func TestForkBypassBranch(t *testing.T) {
	// An empty branch passes buffers straight to the join.
	nw := NewNetwork("bypass")
	p := nw.AddPipeline("main", Buffers(2), BufferBytes(8), Rounds(20))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error {
		binary.BigEndian.PutUint64(b.Data, uint64(b.Round))
		b.N = 8
		return nil
	})
	fork := p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) {
		if b.Round < 5 {
			return 0, nil // heavy branch
		}
		return 1, nil // bypass
	})
	fork.Branch(0).AddStage("negate", func(ctx *Ctx, b *Buffer) error {
		v := binary.BigEndian.Uint64(b.Bytes())
		binary.BigEndian.PutUint64(b.Data, ^v)
		return nil
	})
	fork.Join()
	var mu sync.Mutex
	var got []uint64
	p.AddStage("collect", func(ctx *Ctx, b *Buffer) error {
		mu.Lock()
		got = append(got, binary.BigEndian.Uint64(b.Bytes()))
		mu.Unlock()
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("collected %d, want 20", len(got))
	}
	negated, plain := 0, 0
	for _, v := range got {
		if v > 1<<32 {
			negated++
		} else {
			plain++
		}
	}
	if negated != 5 || plain != 15 {
		t.Errorf("negated=%d plain=%d, want 5/15", negated, plain)
	}
}

func TestForkLastRegionFeedsSink(t *testing.T) {
	// A fork-join with nothing after it: the join conveys to the sink and
	// the pipeline still completes.
	nw := NewNetwork("tail")
	p := nw.AddPipeline("main", Buffers(2), BufferBytes(8), Rounds(12))
	var count int64
	var mu sync.Mutex
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error { return nil })
	fork := p.AddFork("route", 3, func(ctx *Ctx, b *Buffer) (int, error) {
		return b.Round % 3, nil
	})
	for i := 0; i < 3; i++ {
		fork.Branch(i).AddStage(fmt.Sprintf("count%d", i), func(ctx *Ctx, b *Buffer) error {
			mu.Lock()
			count++
			mu.Unlock()
			return nil
		})
	}
	fork.Join()
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 12 {
		t.Fatalf("branch stages ran %d times, want 12", count)
	}
}

func TestForkBranchesOverlap(t *testing.T) {
	// A slow branch must not block buffers taking the fast branch: with
	// both branches sleeping, wall time should approach the slower branch's
	// total rather than the sum.
	const rounds = 12
	nw := NewNetwork("overlap")
	p := nw.AddPipeline("main", Buffers(4), BufferBytes(1), Rounds(rounds))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error { return nil })
	fork := p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) {
		return b.Round % 2, nil
	})
	fork.Branch(0).AddStage("slowA", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(4 * time.Millisecond)
		return nil
	})
	fork.Branch(1).AddStage("slowB", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(4 * time.Millisecond)
		return nil
	})
	fork.Join()
	start := time.Now()
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	serial := time.Duration(rounds) * 4 * time.Millisecond
	if elapsed > serial*3/4 {
		t.Errorf("forked branches took %v; serial would be %v — branches did not overlap", elapsed, serial)
	}
}

func TestForkRouterErrorAborts(t *testing.T) {
	nw := NewNetwork("routeerr")
	p := nw.AddPipeline("main", Buffers(2), Rounds(10))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error { return nil })
	boom := errors.New("router boom")
	fork := p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) {
		if b.Round == 3 {
			return 0, boom
		}
		return 0, nil
	})
	fork.Branch(0).AddStage("noop", func(ctx *Ctx, b *Buffer) error { return nil })
	fork.Join()
	if err := nw.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want router error", err)
	}
}

func TestForkOutOfRangeBranchAborts(t *testing.T) {
	nw := NewNetwork("routerange")
	p := nw.AddPipeline("main", Buffers(2), Rounds(4))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error { return nil })
	fork := p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) {
		return 7, nil
	})
	fork.Branch(0).AddStage("noop", func(ctx *Ctx, b *Buffer) error { return nil })
	fork.Join()
	if err := nw.Run(); err == nil {
		t.Fatal("out-of-range branch did not abort the network")
	}
}

func TestForkBranchStageErrorAborts(t *testing.T) {
	nw := NewNetwork("brancherr")
	p := nw.AddPipeline("main", Buffers(2), Rounds(10))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error { return nil })
	boom := errors.New("branch boom")
	fork := p.AddFork("route", 1, func(ctx *Ctx, b *Buffer) (int, error) { return 0, nil })
	fork.Branch(0).AddStage("fail", func(ctx *Ctx, b *Buffer) error {
		if b.Round == 2 {
			return boom
		}
		return nil
	})
	fork.Join()
	if err := nw.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want branch error", err)
	}
}

func TestUnjoinedForkFailsRun(t *testing.T) {
	nw := NewNetwork("unjoined")
	p := nw.AddPipeline("main", Rounds(1))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error { return nil })
	p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) { return 0, nil })
	if err := nw.Run(); err == nil {
		t.Fatal("network with an unjoined fork ran")
	}
}

func TestSpineStageWhileForkOpenPanics(t *testing.T) {
	nw := NewNetwork("open")
	p := nw.AddPipeline("main", Rounds(1))
	p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) { return 0, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("AddStage with an open fork did not panic")
		}
	}()
	p.AddStage("late", func(ctx *Ctx, b *Buffer) error { return nil })
}

func TestNestedForkPanics(t *testing.T) {
	nw := NewNetwork("nested")
	p := nw.AddPipeline("main", Rounds(1))
	p.AddFork("outer", 2, func(ctx *Ctx, b *Buffer) (int, error) { return 0, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("nested fork did not panic")
		}
	}()
	p.AddFork("inner", 2, func(ctx *Ctx, b *Buffer) (int, error) { return 0, nil })
}

func TestForkInVirtualGroupFailsRun(t *testing.T) {
	nw := NewNetwork("virtfork")
	vg := nw.AddVirtualGroup("g")
	a := vg.AddPipeline("a", Rounds(1))
	b := vg.AddPipeline("b", Rounds(1))
	for _, p := range []*Pipeline{a, b} {
		f := p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) { return 0, nil })
		f.Join()
	}
	if err := nw.Run(); err == nil {
		t.Fatal("fork in a virtual group ran")
	}
}

func TestTwoForkRegionsInOnePipeline(t *testing.T) {
	nw := NewNetwork("two")
	p := nw.AddPipeline("main", Buffers(3), BufferBytes(8), Rounds(30))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error {
		binary.BigEndian.PutUint64(b.Data, uint64(b.Round))
		b.N = 8
		return nil
	})
	add := func(delta uint64) RoundFunc {
		return func(ctx *Ctx, b *Buffer) error {
			v := binary.BigEndian.Uint64(b.Bytes())
			binary.BigEndian.PutUint64(b.Data, v+delta)
			return nil
		}
	}
	f1 := p.AddFork("first", 2, func(ctx *Ctx, b *Buffer) (int, error) { return b.Round % 2, nil })
	f1.Branch(0).AddStage("add100", add(100))
	f1.Branch(1).AddStage("add200", add(200))
	f1.Join()
	f2 := p.AddFork("second", 2, func(ctx *Ctx, b *Buffer) (int, error) { return (b.Round / 2) % 2, nil })
	f2.Branch(0).AddStage("add1000", add(1000))
	f2.Branch(1).AddStage("add2000", add(2000))
	f2.Join()
	var mu sync.Mutex
	var got []uint64
	p.AddStage("collect", func(ctx *Ctx, b *Buffer) error {
		mu.Lock()
		got = append(got, binary.BigEndian.Uint64(b.Bytes()))
		mu.Unlock()
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("collected %d, want 30", len(got))
	}
	var want []uint64
	for r := 0; r < 30; r++ {
		v := uint64(r)
		if r%2 == 0 {
			v += 100
		} else {
			v += 200
		}
		if (r/2)%2 == 0 {
			v += 1000
		} else {
			v += 2000
		}
		want = append(want, v)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestForkMultiStageBranches(t *testing.T) {
	nw := NewNetwork("deep")
	p := nw.AddPipeline("main", Buffers(3), BufferBytes(8), Rounds(16))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error {
		binary.BigEndian.PutUint64(b.Data, 1)
		b.N = 8
		return nil
	})
	mul := func(k uint64) RoundFunc {
		return func(ctx *Ctx, b *Buffer) error {
			v := binary.BigEndian.Uint64(b.Bytes())
			binary.BigEndian.PutUint64(b.Data, v*k)
			return nil
		}
	}
	fork := p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) { return b.Round % 2, nil })
	br := fork.Branch(0)
	br.AddStage("x2", mul(2))
	br.AddStage("x3", mul(3))
	br.AddStage("x5", mul(5))
	fork.Branch(1).AddStage("x7", mul(7))
	fork.Join()
	var mu sync.Mutex
	counts := map[uint64]int{}
	p.AddStage("collect", func(ctx *Ctx, b *Buffer) error {
		mu.Lock()
		counts[binary.BigEndian.Uint64(b.Bytes())]++
		mu.Unlock()
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if counts[30] != 8 || counts[7] != 8 {
		t.Fatalf("counts = %v, want 8 of 30 (2*3*5) and 8 of 7", counts)
	}
}

func TestForkStatsCount(t *testing.T) {
	nw := NewNetwork("forkstats")
	p := nw.AddPipeline("main", Buffers(2), Rounds(9))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error { return nil })
	fork := p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) { return 0, nil })
	fork.Branch(0).AddStage("work", func(ctx *Ctx, b *Buffer) error { return nil })
	fork.Join()
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	for _, st := range nw.Stats().Stages {
		if st.Stage == "route" && st.Rounds != 9 {
			t.Errorf("fork stage counted %d rounds, want 9", st.Rounds)
		}
		if st.Stage == "work" && st.Rounds != 9 {
			t.Errorf("branch stage counted %d rounds, want 9", st.Rounds)
		}
	}
}

func TestReplicatedStageProcessesEverything(t *testing.T) {
	const rounds = 60
	nw := NewNetwork("repl")
	p := nw.AddPipeline("main", Buffers(6), BufferBytes(8), Rounds(rounds))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error {
		binary.BigEndian.PutUint64(b.Data, uint64(b.Round))
		b.N = 8
		return nil
	})
	p.AddStage("work", func(ctx *Ctx, b *Buffer) error {
		v := binary.BigEndian.Uint64(b.Bytes())
		binary.BigEndian.PutUint64(b.Data, v+1000)
		return nil
	}).Replicate(4)
	var mu sync.Mutex
	seen := map[uint64]int{}
	p.AddStage("collect", func(ctx *Ctx, b *Buffer) error {
		mu.Lock()
		seen[binary.BigEndian.Uint64(b.Bytes())]++
		mu.Unlock()
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != rounds {
		t.Fatalf("collected %d distinct values, want %d", len(seen), rounds)
	}
	for r := 0; r < rounds; r++ {
		if seen[uint64(r+1000)] != 1 {
			t.Errorf("round %d processed %d times", r, seen[uint64(r+1000)])
		}
	}
}

func TestReplicatedStageOverlapsWork(t *testing.T) {
	// Four workers sleeping 3ms each should near-quadruple throughput.
	run := func(replicas int) time.Duration {
		nw := NewNetwork("replspeed")
		p := nw.AddPipeline("main", Buffers(8), BufferBytes(1), Rounds(16))
		p.AddStage("produce", func(ctx *Ctx, b *Buffer) error { return nil })
		s := p.AddStage("slow", func(ctx *Ctx, b *Buffer) error {
			time.Sleep(3 * time.Millisecond)
			return nil
		})
		if replicas > 1 {
			s.Replicate(replicas)
		}
		start := time.Now()
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	single := run(1)
	quad := run(4)
	if quad*2 >= single {
		t.Errorf("4 replicas took %v vs single %v; expected at least 2x", quad, single)
	}
}

func TestReplicatedStageErrorAborts(t *testing.T) {
	nw := NewNetwork("replerr")
	p := nw.AddPipeline("main", Buffers(4), Rounds(20))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error { return nil })
	boom := errors.New("replica boom")
	p.AddStage("work", func(ctx *Ctx, b *Buffer) error {
		if b.Round == 7 {
			return boom
		}
		return nil
	}).Replicate(3)
	if err := nw.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want replica error", err)
	}
}

func TestReplicateValidation(t *testing.T) {
	nw := NewNetwork("replbad")
	p := nw.AddPipeline("main", Rounds(1))
	free := p.AddFreeStage("free", func(ctx *Ctx) error { return nil })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Replicate on a free stage did not panic")
			}
		}()
		free.Replicate(2)
	}()
	s := p.AddStage("round", func(ctx *Ctx, b *Buffer) error { return nil })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Replicate(0) did not panic")
			}
		}()
		s.Replicate(0)
	}()
}

func TestReplicateInVirtualGroupFailsRun(t *testing.T) {
	nw := NewNetwork("replvirt")
	vg := nw.AddVirtualGroup("g")
	a := vg.AddPipeline("a", Rounds(1))
	b := vg.AddPipeline("b", Rounds(1))
	a.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil }).Replicate(2)
	b.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err == nil {
		t.Fatal("replicated stage in a virtual group ran")
	}
}

func TestBadGroupDoesNotStrandEarlierGroups(t *testing.T) {
	// A network whose second group is invalid must fail Run without leaving
	// the first group's goroutines running.
	before := runtime.NumGoroutine()
	nw := NewNetwork("strand")
	good := nw.AddPipeline("good", Buffers(2), Rounds(5))
	good.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	vg := nw.AddVirtualGroup("bad")
	a := vg.AddPipeline("a", Rounds(1))
	b := vg.AddPipeline("b", Rounds(1))
	for _, p := range []*Pipeline{a, b} {
		f := p.AddFork("f", 2, func(ctx *Ctx, b *Buffer) (int, error) { return 0, nil })
		f.Join()
	}
	if err := nw.Run(); err == nil {
		t.Fatal("invalid network ran")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d after failed Run", before, runtime.NumGoroutine())
}
