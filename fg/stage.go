package fg

import (
	"fmt"
	"sync/atomic"
	"time"
)

// A RoundFunc is the body of a round stage. The framework accepts a buffer
// from the stage's predecessor, calls the function, and conveys the same
// buffer to the successor — the balanced accept/convey pattern of a classic
// FG stage. The function must not retain b past its return.
type RoundFunc func(ctx *Ctx, b *Buffer) error

// A StageFunc is the body of a free stage. The function drives its own
// accepts and conveys through ctx, so it may accept and convey buffers at
// different rates — the pattern FG's multiple-pipeline extensions exist to
// support. The function returns when its work is done (or when Accept
// reports end of input); the framework conveys the caboose onward for any
// of the stage's pipelines that still need it.
type StageFunc func(ctx *Ctx) error

// A Stage is one pipeline stage. Stages are created by Pipeline.AddStage,
// Pipeline.AddFreeStage, or NewStage, and run in exactly one goroutine each
// regardless of how many pipelines they belong to. Adding the same *Stage
// to several pipelines makes those pipelines intersect at it.
type Stage struct {
	name  string
	round RoundFunc
	free  StageFunc

	slots []slotRef // (pipeline, position) memberships in add order

	// fork/join are set on the placeholder stages that anchor a fork-join
	// region to the pipeline spine.
	fork *Fork
	join *Fork

	// replicas > 1 asks for that many parallel workers (see Replicate).
	replicas int

	stats stageCounters
}

// slotRef locates a stage within one pipeline.
type slotRef struct {
	pipe *Pipeline
	pos  int
}

// stageCounters accumulates a stage's runtime statistics with atomics so
// the runner writes and Stats reads race-free.
type stageCounters struct {
	rounds     atomic.Int64
	acceptWait atomic.Int64 // ns blocked waiting to accept
	work       atomic.Int64 // ns inside the stage function

	// park is the stage's instantaneous activity (a StageState value) and
	// parkSince the wall clock (UnixNano) of its last transition. The
	// runners store them on transitions they already time, so a watchdog or
	// status scrape can tell a stage that is working from one parked in an
	// accept — and how long it has been there — without stopping anything.
	park      atomic.Int32
	parkSince atomic.Int64
}

// setPark records a stage state transition at the given wall-clock instant.
func (sc *stageCounters) setPark(st StageState, now time.Time) {
	sc.parkSince.Store(now.UnixNano())
	sc.park.Store(int32(st))
}

// A StageState is a stage's instantaneous activity, sampled race-free from
// its counters. It is deliberately coarse: the watchdog and status endpoint
// refine it with round progress and queue occupancy.
type StageState int32

const (
	// StageIdle: the network has not started (or the stage never ran).
	StageIdle StageState = iota
	// StageAccepting: parked in an accept, waiting for a buffer.
	StageAccepting
	// StageWorking: inside the stage function. A stage parked here for a
	// long time with no round progress is stuck in a disk or communication
	// operation — or deadlocked.
	StageWorking
	// StageDone: the stage consumed its caboose and its runner moved on.
	StageDone
)

func (s StageState) String() string {
	switch s {
	case StageIdle:
		return "idle"
	case StageAccepting:
		return "accepting"
	case StageWorking:
		return "working"
	case StageDone:
		return "done"
	}
	return fmt.Sprintf("StageState(%d)", int32(s))
}

// NewStage creates a free stage that is not yet part of any pipeline. Use
// it for a stage that several pipelines share: add it to each of them with
// Pipeline.Add, and the pipelines intersect at it.
func NewStage(name string, fn StageFunc) *Stage {
	if fn == nil {
		panic("fg: NewStage with nil function")
	}
	return &Stage{name: name, free: fn}
}

// Name returns the stage's display name.
func (s *Stage) Name() string { return s.name }

// isFree reports whether the stage drives its own accepts and conveys.
func (s *Stage) isFree() bool { return s.free != nil }

// primary returns the pipeline the stage was first added to.
func (s *Stage) primary() *Pipeline {
	if len(s.slots) == 0 {
		return nil
	}
	return s.slots[0].pipe
}

// posIn returns the stage's position within pipeline p, or -1.
func (s *Stage) posIn(p *Pipeline) int {
	for _, ref := range s.slots {
		if ref.pipe == p {
			return ref.pos
		}
	}
	return -1
}

// A Ctx is a stage's handle to the framework, passed to every stage
// function. A Ctx is owned by its stage's goroutine and must not be shared.
type Ctx struct {
	nw    *Network
	stage *Stage

	// restricted marks the context handed to round stages, whose accepts
	// and conveys the framework performs itself.
	restricted bool

	// held buffers arrived on a shared queue while the stage was accepting
	// from a different pipeline; they are handed out by later AcceptFrom
	// calls on their own pipeline.
	held map[*Pipeline][]*Buffer
	// eof marks pipelines whose caboose this stage has consumed.
	eof map[*Pipeline]bool
	// cabooseFwd marks pipelines whose caboose this stage has already
	// conveyed downstream (on consumption, or synthesized at return).
	cabooseFwd map[*Pipeline]bool
}

func newCtx(nw *Network, s *Stage) *Ctx {
	return &Ctx{
		nw:         nw,
		stage:      s,
		held:       make(map[*Pipeline][]*Buffer),
		eof:        make(map[*Pipeline]bool),
		cabooseFwd: make(map[*Pipeline]bool),
	}
}

// Network returns the network the stage runs in.
func (c *Ctx) Network() *Network { return c.nw }

// Stage returns the stage this context belongs to.
func (c *Ctx) Stage() *Stage { return c.stage }

// Accept receives the next buffer from the stage's predecessor in its
// primary pipeline (the one it was first added to). It returns ok=false
// when the pipeline's caboose arrives — no more buffers will follow — or
// when the network is shutting down. Stages that belong to several
// pipelines should use AcceptFrom to say which pipeline they want.
func (c *Ctx) Accept() (*Buffer, bool) {
	return c.AcceptFrom(c.stage.primary())
}

// AcceptFrom receives the next buffer that pipeline p conveys into this
// stage. It returns ok=false once p's caboose has arrived or the network is
// shutting down. If p shares an input queue with other pipelines of a
// virtual group, buffers belonging to those pipelines are held internally
// and delivered by later AcceptFrom calls naming them.
func (c *Ctx) AcceptFrom(p *Pipeline) (*Buffer, bool) {
	if c.restricted {
		panic("fg: round stages accept automatically; use a free stage to accept explicitly")
	}
	pos := c.stage.posIn(p)
	if pos < 0 {
		panic(fmt.Sprintf("fg: stage %q accepting from pipeline %q it does not belong to",
			c.stage.name, p.name))
	}
	if bs := c.held[p]; len(bs) > 0 {
		c.held[p] = bs[1:]
		return bs[0], true
	}
	if c.eof[p] {
		return nil, false
	}
	in := p.group.queues[pos]
	for {
		start := time.Now()
		c.stage.stats.setPark(StageAccepting, start)
		b, err := in.pop(c.nw.done)
		now := time.Now()
		c.stage.stats.acceptWait.Add(int64(now.Sub(start)))
		c.stage.stats.setPark(StageWorking, now)
		if err != nil {
			c.nw.traceWait(c.stage, p, -1, start)
			return nil, false
		}
		round := -1
		if !b.caboose {
			round = b.Round
		}
		c.nw.traceWait(c.stage, p, round, start)
		if b.caboose {
			c.eof[b.pipe] = true
			c.forwardCaboose(b.pipe, b)
			if b.pipe == p {
				return nil, false
			}
			continue
		}
		if b.pipe == p {
			c.stage.stats.rounds.Add(1)
			return b, true
		}
		c.held[b.pipe] = append(c.held[b.pipe], b)
		c.stage.stats.rounds.Add(1)
	}
}

// Convey passes b to this stage's successor in b's pipeline: the next
// stage, or the sink if this is the last stage. Buffers always travel along
// the pipeline they were injected into.
func (c *Ctx) Convey(b *Buffer) {
	if c.restricted {
		panic("fg: round stages convey automatically; use a free stage to convey explicitly")
	}
	if b == nil || b.caboose {
		panic("fg: Convey of nil or caboose buffer")
	}
	pos := c.stage.posIn(b.pipe)
	if pos < 0 {
		panic(fmt.Sprintf("fg: stage %q conveying a buffer of pipeline %q it does not belong to",
			c.stage.name, b.pipe.name))
	}
	// Push cannot block by construction; an error only signals shutdown.
	_ = b.pipe.group.queues[pos+1].push(b, c.nw.done)
}

// forwardCaboose conveys pipeline p's caboose to this stage's successor in
// p, exactly once. If the real caboose buffer is at hand it is forwarded;
// otherwise a fresh sentinel is minted (the stage returned before consuming
// the real one, which shutdown will drain).
func (c *Ctx) forwardCaboose(p *Pipeline, real *Buffer) {
	if c.cabooseFwd[p] {
		return
	}
	c.cabooseFwd[p] = true
	b := real
	if b == nil {
		b = &Buffer{caboose: true, pipe: p}
	}
	pos := c.stage.posIn(p)
	_ = p.group.queues[pos+1].push(b, c.nw.done)
}

// finish synthesizes cabooses for every pipeline the stage belongs to whose
// caboose it has not already forwarded. Called by the runner after the
// stage function returns without error.
func (c *Ctx) finish() {
	for _, ref := range c.stage.slots {
		c.forwardCaboose(ref.pipe, nil)
	}
}

// runFree executes a free (possibly intersecting) stage.
func runFree(nw *Network, s *Stage) {
	defer nw.wg.Done()
	defer nw.recoverPanic(s.name)
	ctx := newCtx(nw, s)
	start := time.Now()
	s.stats.setPark(StageWorking, start)
	err := s.free(ctx)
	end := time.Now()
	s.stats.work.Add(int64(end.Sub(start)) - s.stats.acceptWait.Load())
	s.stats.setPark(StageDone, end)
	if err != nil {
		nw.fail(fmt.Errorf("fg: stage %q: %w", s.name, err))
		return
	}
	ctx.finish()
}

// runSlot executes the round stages of one group slot: it serves the
// position-pos stage of every pipeline in the group, dispatching each
// buffer to its own pipeline's stage function. For a plain pipeline the
// group has one member and this is the classic one-thread-per-stage runner;
// for a virtual group it is FG's shared thread for k identical virtual
// stages.
func runSlot(nw *Network, g *group, pos int) {
	defer nw.wg.Done()
	// The slot serves one stage per member pipeline; blame the one whose
	// buffer was in hand when the panic happened.
	current := g.pipes[0].stages[pos].name
	defer func() {
		if pe := capturePanic(current, recover()); pe != nil {
			nw.fail(pe)
		}
	}()
	in := g.queues[pos]
	out := g.queues[pos+1]
	remaining := len(g.pipes)
	// Batching (fg.Batch): processed buffers accumulate in pending and are
	// handed off together — but only while further input is already queued,
	// so a batch is never held while the stage would otherwise block, and
	// the flush-before-blocking rule below keeps ordering, caboose
	// placement, and deadlock-freedom exactly as in the unbatched build.
	batch := g.batch
	var pending []*Buffer
	if batch > 1 {
		pending = make([]*Buffer, 0, batch)
	}
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		err := out.pushN(pending, nw.done)
		pending = pending[:0]
		return err
	}
	// Every member stage of the slot is now waiting for its first buffer.
	// Per round, the served stage is marked working for exactly the span of
	// its function, so a parked slot shows every member accepting and a
	// stage stuck inside its function shows working since the round began.
	slotStart := time.Now()
	for _, p := range g.pipes {
		p.stages[pos].stats.setPark(StageAccepting, slotStart)
	}
	for remaining > 0 {
		start := time.Now()
		var b *Buffer
		if bb, ok := in.tryPop(); ok {
			b = bb
		} else {
			// Input ran dry: release anything batched downstream before
			// parking, then block for the next buffer.
			if err := flush(); err != nil {
				return
			}
			bb, err := in.pop(nw.done)
			if err != nil {
				return
			}
			b = bb
		}
		wait := time.Since(start)
		s := b.pipe.stages[pos]
		current = s.name
		s.stats.acceptWait.Add(int64(wait))
		round := -1
		if !b.caboose {
			round = b.Round
		}
		nw.traceWait(s, b.pipe, round, start)
		if b.caboose {
			remaining--
			s.stats.setPark(StageDone, time.Now())
			if err := flush(); err != nil {
				return
			}
			_ = out.push(b, nw.done)
			continue
		}
		ctx := b.pipe.slotCtx[pos]
		t0 := time.Now()
		s.stats.setPark(StageWorking, t0)
		ferr := s.round(ctx, b)
		t1 := time.Now()
		s.stats.work.Add(int64(t1.Sub(t0)))
		s.stats.rounds.Add(1)
		s.stats.setPark(StageAccepting, t1)
		nw.traceWork(s, b.pipe, b.Round, t0)
		if ferr != nil {
			nw.fail(fmt.Errorf("fg: stage %q: %w", s.name, ferr))
			return
		}
		if batch > 1 {
			pending = append(pending, b)
			if len(pending) >= batch {
				if err := flush(); err != nil {
					return
				}
			}
			continue
		}
		if err := out.push(b, nw.done); err != nil {
			return
		}
	}
}
