package fg

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAttachFinishExactlyOnceOnPanic is the double-report guard: a runner
// that both defers finish and calls it on the error path — with a Run that
// died on a *PanicError — must deliver the final stats to OnStats exactly
// once.
func TestAttachFinishExactlyOnceOnPanic(t *testing.T) {
	var delivered atomic.Int64
	o := &Observe{
		Flight: NewFlightRecorder(64),
		OnStats: func(st NetworkStats) {
			delivered.Add(1)
			if st.Name != "panicky" {
				t.Errorf("stats for network %q", st.Name)
			}
		},
		Watchdog: &WatchdogConfig{Interval: 5 * time.Millisecond, StallAfter: time.Hour},
	}
	nw := NewNetwork("panicky")
	p := nw.AddPipeline("main", Buffers(2), Rounds(4))
	p.AddStage("boom", func(ctx *Ctx, b *Buffer) error {
		if b.Round == 2 {
			panic("kaboom")
		}
		return nil
	})
	finish := o.Attach(nw)

	err := func() error {
		defer finish()
		err := nw.Run()
		if err != nil {
			finish() // the error path reports too, as runners do
		}
		return err
	}()

	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v, want a *PanicError", err)
	}
	if pe.Stage != "boom" {
		t.Errorf("PanicError.Stage = %q", pe.Stage)
	}
	if got := delivered.Load(); got != 1 {
		t.Fatalf("OnStats delivered %d times, want exactly 1", got)
	}
	// The flight recorder rode along: the black box has the rounds that ran
	// before the panic.
	if len(o.Flight.Snapshot()) == 0 {
		t.Error("flight recorder recorded nothing before the panic")
	}
	// Calling finish yet again must stay a no-op.
	finish()
	if got := delivered.Load(); got != 1 {
		t.Fatalf("a third finish re-delivered stats (%d)", got)
	}
}

// TestAttachFinishConcurrent calls finish from several goroutines at once;
// exactly one delivery may win.
func TestAttachFinishConcurrent(t *testing.T) {
	var delivered atomic.Int64
	o := &Observe{OnStats: func(NetworkStats) { delivered.Add(1) }}
	nw := NewNetwork("racy-finish")
	p := nw.AddPipeline("main", Rounds(1))
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	finish := o.Attach(nw)
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			finish()
		}()
	}
	wg.Wait()
	if got := delivered.Load(); got != 1 {
		t.Fatalf("OnStats delivered %d times under concurrent finish, want 1", got)
	}
}

// TestAttachNilObserveIsFree checks the nil contract.
func TestAttachNilObserveIsFree(t *testing.T) {
	var o *Observe
	nw := NewNetwork("unobserved")
	p := nw.AddPipeline("main", Rounds(1))
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	finish := o.Attach(nw)
	if finish == nil {
		t.Fatal("nil Observe returned a nil finish")
	}
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	finish()
	finish()
}
