package fg

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Live status endpoint. Where /metrics serves flat samples for a scraper,
// /status answers the operator's question directly: which stages are
// running, which are blocked, and what governs the wall clock right now.
// Both views read the same lock-free counters Stats reads, so hitting the
// endpoint mid-run costs the run nothing.

// statusStuckFor is the park duration past which the status view labels a
// stage blocked rather than running. It is a display threshold, not a stall
// alarm — the watchdog applies its own, derived from StallAfter.
const statusStuckFor = time.Second

// NetworkStatus is one network's live health document, served as JSON at
// /status.json and rendered as text at /status.
type NetworkStatus struct {
	Network string        `json:"network"`
	Running bool          `json:"running"`
	Wall    time.Duration `json:"wall_ns"`
	Stages  []StageHealth `json:"stages"`
	// Bottleneck is the current governing-stage analysis — mid-run it
	// reports the bottleneck so far.
	Bottleneck BottleneckReport `json:"bottleneck"`
}

// Status snapshots the network's live health: per-stage classified states,
// rounds, utilization, and the current bottleneck. Safe to call at any
// time, including while Run is in flight.
func (nw *Network) Status() NetworkStatus {
	st := nw.Stats()
	ns := NetworkStatus{
		Network:    st.Name,
		Running:    st.Running,
		Wall:       st.Wall,
		Stages:     classifyStages(st, statusStuckFor),
		Bottleneck: st.Bottleneck(),
	}
	for i, s := range st.Stages {
		if st.Wall > 0 {
			ns.Stages[i].Utilization = float64(s.Work) / float64(st.Wall)
		}
	}
	return ns
}

// String renders the status as a human-readable block.
func (s NetworkStatus) String() string {
	var b strings.Builder
	state := "idle"
	if s.Running {
		state = "running"
	} else if s.Wall > 0 {
		state = "finished"
	}
	fmt.Fprintf(&b, "network %q: %s, wall %v\n", s.Network, state, s.Wall.Round(time.Millisecond))
	for _, h := range s.Stages {
		fill := fmt.Sprintf("%d", h.QueueLen)
		if h.QueueCap > 0 {
			fill = fmt.Sprintf("%d/%d", h.QueueLen, h.QueueCap)
		}
		fmt.Fprintf(&b, "  stage %-20s on %-20s %-14s rounds=%-6d util=%3.0f%% queue=%-7s for %v\n",
			h.Stage, h.Pipeline, h.State, h.Rounds, 100*h.Utilization, fill,
			h.InState.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "  %s\n", s.Bottleneck)
	return b.String()
}

// PeerHealth is one cluster peer's liveness in the node-local status
// document — the fg-typed mirror of cluster.PeerStatus, registered via
// MetricsRegistry.RegisterPeerHealth so /status answers "who went quiet"
// without this package importing the cluster.
type PeerHealth struct {
	Rank int `json:"rank"`
	// LastSeenAge is how long ago the peer's last heartbeat arrived.
	LastSeenAge time.Duration `json:"last_seen_age_ns"`
	// Monitored reports whether the peer is a death-detection candidate on
	// this process; unmonitored peers are this process's own ranks.
	Monitored bool `json:"monitored"`
	Suspect   bool `json:"suspect,omitempty"`
	Dead      bool `json:"dead,omitempty"`
}

// statusDoc is the /status.json document when a peer-health source is
// registered; without one the endpoint keeps its historical shape, a bare
// array of NetworkStatus.
type statusDoc struct {
	Networks []NetworkStatus `json:"networks"`
	Peers    []PeerHealth    `json:"peers"`
}

// statusSnapshots builds one status document per registered network.
func (r *MetricsRegistry) statusSnapshots() []NetworkStatus {
	r.mu.Lock()
	nets := append([]*Network(nil), r.nets...)
	r.mu.Unlock()
	out := make([]NetworkStatus, len(nets))
	for i, nw := range nets {
		out[i] = nw.Status()
	}
	return out
}

// StatusJSONHandler serves every registered network's status as JSON, for
// dashboards and scripts: a bare array of network documents, or — once a
// peer-health source is registered — an object with "networks" and
// "peers" sections.
func (r *MetricsRegistry) StatusJSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if peers := r.peerHealth(); peers != nil {
			_ = json.NewEncoder(w).Encode(statusDoc{Networks: r.statusSnapshots(), Peers: peers})
			return
		}
		_ = json.NewEncoder(w).Encode(r.statusSnapshots())
	})
}

// StatusTextHandler serves every registered network's status as plain text,
// for curl and humans.
func (r *MetricsRegistry) StatusTextHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snaps := r.statusSnapshots()
		if len(snaps) == 0 {
			fmt.Fprintln(w, "(no networks registered)")
			return
		}
		for _, s := range snaps {
			fmt.Fprint(w, s.String())
		}
		for _, p := range r.peerHealth() {
			state := "ok"
			switch {
			case p.Dead:
				state = "dead"
			case p.Suspect:
				state = "suspect"
			case !p.Monitored:
				state = "local"
			}
			fmt.Fprintf(w, "peer %d: %-7s last heartbeat %v ago\n",
				p.Rank, state, p.LastSeenAge.Round(time.Millisecond))
		}
	})
}

// ServeStatus starts an HTTP endpoint for this network's live health: a
// fresh registry with the network registered, served on addr (":0" picks a
// free port). The server exposes /status (text), /status.json, /metrics,
// and /debug/vars — the same mux MetricsRegistry.Serve mounts. May be
// called before or during Run.
func (nw *Network) ServeStatus(addr string) (*MetricsServer, error) {
	return nw.ServeMetrics(addr)
}
