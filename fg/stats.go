package fg

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageStats reports one stage's activity. AcceptWait is the time the
// stage's goroutine spent blocked waiting for a buffer; Work is the time
// spent inside the stage function. A well-overlapped pipeline shows large
// AcceptWait on cheap stages and large Work on the expensive ones, with
// total wall time close to the largest single stage rather than the sum —
// the latency-hiding FG exists for.
type StageStats struct {
	Stage      string
	Pipeline   string // the stage's primary pipeline
	Shared     bool   // stage belongs to more than one pipeline (intersecting)
	Virtual    bool   // stage runs in a shared virtual-slot goroutine
	Rounds     int64  // buffers accepted
	AcceptWait time.Duration
	Work       time.Duration
	// QueueLen is the instantaneous occupancy of the stage's input queue at
	// snapshot time — buffers waiting to be accepted. A persistently full
	// queue in front of a stage marks it as the bottleneck; a persistently
	// empty one means the stage is starved. Zero before the network starts.
	QueueLen int
	// QueueCap is that queue's capacity, so occupancy can be read as a
	// fraction. Zero before the network starts.
	QueueCap int
	// SlowPushes counts pushes into the stage's input queue that missed the
	// non-blocking fast path. Queues are sized so that pushes never block by
	// construction; a nonzero count is an invariant violation worth
	// investigating (it also emits a flight-recorder event).
	SlowPushes int64
	// State is the stage's instantaneous activity and InState how long it has
	// been there. A stage Working for seconds with no round progress is stuck
	// inside its function (a hung disk or comm op, or a deadlock); one
	// Accepting that long is waiting on an upstream that stopped producing.
	State   StageState
	InState time.Duration
}

// PipelineStats reports one pipeline's configuration and progress.
type PipelineStats struct {
	Name        string
	Virtual     bool
	Buffers     int
	BufferBytes int
	Rounds      int64 // rounds emitted by the source so far
	// PoolIdle is the instantaneous number of recycled buffers sitting idle
	// in the pool at snapshot time, and PoolCap the pool's capacity. A pool
	// that is never idle means every buffer is in flight — the pipeline is
	// using all the concurrency its pool allows. Members of a virtual group
	// share one pool and report the same numbers. Zero before the network
	// starts.
	PoolIdle int
	PoolCap  int
	// EffectiveBuffers is the number of pool buffers the source currently
	// keeps circulating — Buffers unless an auto-tuner (or a call to
	// Pipeline.SetEffectiveBuffers) has parked some of the slack. Equal to
	// Buffers before the network starts.
	EffectiveBuffers int
}

// NetworkStats is a snapshot of a network's activity. It may be taken at
// any time: before Run (configuration only), during Run (live counters,
// safe to call concurrently from another goroutine), or after (final
// totals).
type NetworkStats struct {
	Name      string
	Pipelines []PipelineStats
	Stages    []StageStats
	// Running reports whether the snapshot was taken while Run was in
	// flight. Wall is the elapsed run time so far (Running) or the final
	// run duration (after Run returns); zero before Run starts.
	Running bool
	Wall    time.Duration
}

// Stats snapshots the network's per-pipeline and per-stage statistics. It
// is safe to call from any goroutine at any time, including while Run is in
// flight: all counters are maintained atomically and queue/pool occupancy
// reads are instantaneous channel lengths.
func (nw *Network) Stats() NetworkStats {
	st := NetworkStats{Name: nw.name}
	switch nw.runState.Load() {
	case runStateRunning:
		st.Running = true
		st.Wall = time.Since(nw.runStart)
	case runStateDone:
		st.Wall = time.Duration(nw.runNanos.Load())
	}
	seen := map[*Stage]bool{}
	for _, g := range nw.groups {
		// built is stored after the group's queues and pool are allocated,
		// so observing it true makes them safe to read here.
		built := g.built.Load()
		for _, p := range g.pipes {
			ps := PipelineStats{
				Name:        p.name,
				Virtual:     g.virtual,
				Buffers:     p.nBuffers,
				BufferBytes: p.bufBytes,
				Rounds:      p.emitted.Load(),
			}
			ps.EffectiveBuffers = p.EffectiveBuffers()
			if built {
				ps.PoolIdle = len(g.pool)
				ps.PoolCap = cap(g.pool)
			}
			st.Pipelines = append(st.Pipelines, ps)
			for pos, s := range p.stages {
				if seen[s] {
					continue
				}
				seen[s] = true
				ss := StageStats{
					Stage:      s.name,
					Pipeline:   s.primary().name,
					Shared:     len(s.slots) > 1,
					Virtual:    g.virtual && !s.isFree(),
					Rounds:     s.stats.rounds.Load(),
					AcceptWait: time.Duration(s.stats.acceptWait.Load()),
					Work:       time.Duration(s.stats.work.Load()),
				}
				// Load parkSince before park: setPark stores since first, so
				// the duration can only be read conservatively (too short),
				// never as a stale long stretch in a fresh state.
				since := s.stats.parkSince.Load()
				ss.State = StageState(s.stats.park.Load())
				if ss.State != StageIdle && since > 0 {
					ss.InState = time.Since(time.Unix(0, since))
					if ss.InState < 0 {
						ss.InState = 0
					}
				}
				if built {
					q := g.queues[pos]
					ss.QueueLen = q.len()
					ss.QueueCap = q.cap()
					ss.SlowPushes = q.slowPushes()
				}
				st.Stages = append(st.Stages, ss)
			}
		}
	}
	return st
}

// A BottleneckReport names the stage that governs a network's wall time and
// quantifies how well the network overlapped its stages.
type BottleneckReport struct {
	Stage    string // the stage with the most work time
	Pipeline string
	Work     time.Duration // that stage's total work
	// Utilization is Work/Wall: the fraction of the run the governing stage
	// was busy. Near 1 means the run is as fast as that stage allows and
	// speeding anything else up is pointless. It can exceed 1 for
	// replicated stages, whose workers accumulate work in parallel.
	Utilization float64
	SumWork     time.Duration // work summed over every stage
	Wall        time.Duration
	// Overlap locates the wall time between the two limits the paper's
	// analysis uses: 1 when wall ≈ max single stage (perfect overlap, the
	// pipeline hid everything else behind the bottleneck) and 0 when wall ≈
	// sum of stages (no overlap, the stages ran end to end). Zero when the
	// network has fewer than two working stages.
	Overlap float64
}

// Bottleneck analyzes the snapshot and names the governing stage. Call it
// on the Stats of a finished run (a mid-run snapshot reports the
// bottleneck so far).
func (s NetworkStats) Bottleneck() BottleneckReport {
	r := BottleneckReport{Wall: s.Wall}
	var maxWork time.Duration
	for _, st := range s.Stages {
		r.SumWork += st.Work
		if st.Work > maxWork {
			maxWork = st.Work
			r.Stage = st.Stage
			r.Pipeline = st.Pipeline
			r.Work = st.Work
		}
	}
	if s.Wall > 0 {
		r.Utilization = float64(r.Work) / float64(s.Wall)
	}
	if den := r.SumWork - r.Work; den > 0 && s.Wall > 0 {
		r.Overlap = float64(r.SumWork-s.Wall) / float64(den)
		if r.Overlap < 0 {
			r.Overlap = 0
		}
		if r.Overlap > 1 {
			r.Overlap = 1
		}
	}
	return r
}

// String renders the report as one log line.
func (r BottleneckReport) String() string {
	if r.Stage == "" {
		return "bottleneck: (no stage work recorded)"
	}
	return fmt.Sprintf(
		"bottleneck: stage %q on %q work=%v util=%.0f%% overlap=%.2f (wall %v vs %v summed)",
		r.Stage, r.Pipeline, r.Work.Round(time.Millisecond), 100*r.Utilization,
		r.Overlap, r.Wall.Round(time.Millisecond), r.SumWork.Round(time.Millisecond))
}

// String renders the statistics as an aligned table for logs and demos.
func (s NetworkStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %q", s.Name)
	if s.Wall > 0 {
		state := "finished in"
		if s.Running {
			state = "running for"
		}
		fmt.Fprintf(&b, " (%s %v)", state, s.Wall.Round(time.Millisecond))
	}
	b.WriteString("\n")
	for _, p := range s.Pipelines {
		kind := "pipeline"
		if p.Virtual {
			kind = "virtual pipeline"
		}
		fmt.Fprintf(&b, "  %-16s %-24s %3d buffers x %8d B, %6d rounds, pool %d/%d idle\n",
			kind, p.Name, p.Buffers, p.BufferBytes, p.Rounds, p.PoolIdle, p.PoolCap)
	}
	stages := append([]StageStats(nil), s.Stages...)
	sort.SliceStable(stages, func(i, j int) bool { return stages[i].Pipeline < stages[j].Pipeline })
	for _, st := range stages {
		flags := ""
		if st.Shared {
			flags += " [shared]"
		}
		if st.Virtual {
			flags += " [virtual]"
		}
		fmt.Fprintf(&b, "  stage %-20s on %-20s rounds=%6d wait=%-12v work=%-12v queue=%d/%d%s\n",
			st.Stage, st.Pipeline, st.Rounds, st.AcceptWait.Round(time.Microsecond),
			st.Work.Round(time.Microsecond), st.QueueLen, st.QueueCap, flags)
	}
	return b.String()
}
