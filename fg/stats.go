package fg

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageStats reports one stage's activity. AcceptWait is the time the
// stage's goroutine spent blocked waiting for a buffer; Work is the time
// spent inside the stage function. A well-overlapped pipeline shows large
// AcceptWait on cheap stages and large Work on the expensive ones, with
// total wall time close to the largest single stage rather than the sum —
// the latency-hiding FG exists for.
type StageStats struct {
	Stage      string
	Pipeline   string // the stage's primary pipeline
	Shared     bool   // stage belongs to more than one pipeline (intersecting)
	Virtual    bool   // stage runs in a shared virtual-slot goroutine
	Rounds     int64  // buffers accepted
	AcceptWait time.Duration
	Work       time.Duration
}

// PipelineStats reports one pipeline's configuration and progress.
type PipelineStats struct {
	Name        string
	Virtual     bool
	Buffers     int
	BufferBytes int
	Rounds      int64 // rounds emitted by the source so far
}

// NetworkStats is a snapshot of a network's activity, taken at any time
// (typically after Run returns).
type NetworkStats struct {
	Name      string
	Pipelines []PipelineStats
	Stages    []StageStats
}

// Stats snapshots the network's per-pipeline and per-stage statistics.
func (nw *Network) Stats() NetworkStats {
	st := NetworkStats{Name: nw.name}
	seen := map[*Stage]bool{}
	for _, g := range nw.groups {
		for _, p := range g.pipes {
			st.Pipelines = append(st.Pipelines, PipelineStats{
				Name:        p.name,
				Virtual:     g.virtual,
				Buffers:     p.nBuffers,
				BufferBytes: p.bufBytes,
				Rounds:      p.emitted.Load(),
			})
			for _, s := range p.stages {
				if seen[s] {
					continue
				}
				seen[s] = true
				st.Stages = append(st.Stages, StageStats{
					Stage:      s.name,
					Pipeline:   s.primary().name,
					Shared:     len(s.slots) > 1,
					Virtual:    g.virtual && !s.isFree(),
					Rounds:     s.stats.rounds.Load(),
					AcceptWait: time.Duration(s.stats.acceptWait.Load()),
					Work:       time.Duration(s.stats.work.Load()),
				})
			}
		}
	}
	return st
}

// String renders the statistics as an aligned table for logs and demos.
func (s NetworkStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %q\n", s.Name)
	for _, p := range s.Pipelines {
		kind := "pipeline"
		if p.Virtual {
			kind = "virtual pipeline"
		}
		fmt.Fprintf(&b, "  %-16s %-24s %3d buffers x %8d B, %6d rounds\n",
			kind, p.Name, p.Buffers, p.BufferBytes, p.Rounds)
	}
	stages := append([]StageStats(nil), s.Stages...)
	sort.SliceStable(stages, func(i, j int) bool { return stages[i].Pipeline < stages[j].Pipeline })
	for _, st := range stages {
		flags := ""
		if st.Shared {
			flags += " [shared]"
		}
		if st.Virtual {
			flags += " [virtual]"
		}
		fmt.Fprintf(&b, "  stage %-20s on %-20s rounds=%6d wait=%-12v work=%-12v%s\n",
			st.Stage, st.Pipeline, st.Rounds, st.AcceptWait.Round(time.Microsecond),
			st.Work.Round(time.Microsecond), flags)
	}
	return b.String()
}
