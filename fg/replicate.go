package fg

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stage replication. The paper notes (Section II) that FG gains additional
// parallelism "when threads can run concurrently on multiple cores"; for a
// stage whose work is pure computation on its own buffer, the natural next
// step is serving one stage with several worker goroutines. Replicate marks
// a round stage to be run by n workers sharing its input and output queues.
// Buffers may leave a replicated stage in a different order than they
// entered (like a fork-join, downstream stages can reorder by Buffer.Round
// if they care); everything else about the pipeline is unchanged.
//
// This is an extension beyond the paper's published FG, flagged as such in
// DESIGN.md.
//
// Replication is one of two ways to put cores behind a compute stage; the
// other is intra-buffer parallelism: the multicore kernels in
// internal/sortalgo (parallel radix sort, merge, partition) that the
// sorting programs enable through the Parallelism knob on their configs.
// They differ in what they trade away. Replicate pipelines across buffers —
// n buffers are inside the stage at once (shrinking the pool slack that
// hides I/O latency elsewhere) and output order is not preserved.
// Intra-buffer parallelism splits the work on each single buffer — order is
// preserved and no extra buffers are consumed, but it only pays off when
// one buffer carries enough work to shard (the kernels fall back to serial
// below tuned thresholds). Prefer intra-buffer parallelism for large
// buffers and order-sensitive consumers; prefer Replicate for many small
// independent rounds.
//
// Both mechanisms may be enabled at once without oversubscribing the
// machine: the intra-buffer kernels draw from one process-wide pool
// (internal/parallel) bounded at GOMAXPROCS-1 helpers, and a stage's worker
// always executes its own share, so n replicas each running a parallel
// kernel compete for the same bounded helper set rather than spawning n
// pools. The cost of combining them is only that each replica sees fewer
// idle helpers, degrading toward plain replication.

// Replicate asks for n parallel workers for this stage. It panics unless
// the stage is a round stage on the spine of exactly one ordinary
// (non-virtual) pipeline; validation of the group happens when the network
// starts.
func (s *Stage) Replicate(n int) *Stage {
	if n < 1 {
		panic(fmt.Sprintf("fg: stage %q: invalid replica count %d", s.name, n))
	}
	if s.round == nil {
		panic(fmt.Sprintf("fg: stage %q: only round stages can be replicated", s.name))
	}
	if len(s.slots) != 1 || s.slots[0].pos < 0 {
		panic(fmt.Sprintf("fg: stage %q: only spine stages of one pipeline can be replicated", s.name))
	}
	s.replicas = n
	return s
}

// validateReplicas is called from group.build.
func (g *group) validateReplicas() error {
	for _, p := range g.pipes {
		for _, s := range p.stages {
			if s.replicas > 1 && len(g.pipes) > 1 {
				return fmt.Errorf("fg: virtual group %q: stage %q cannot be replicated", g.name, s.name)
			}
		}
	}
	return nil
}

// runReplicated serves one stage position with n workers. Each data buffer
// is processed by exactly one worker. The single caboose circulates: each
// worker that meets it counts itself out and puts it back for its siblings;
// the last one forwards it downstream. Because a worker only meets the
// caboose after conveying its in-flight buffer, every data buffer reaches
// the output queue before the caboose does.
func runReplicated(nw *Network, g *group, pos int) {
	s := g.pipes[0].stages[pos]
	in := g.queues[pos]
	out := g.queues[pos+1]
	ctx := g.pipes[0].slotCtx[pos]
	var seen atomic.Int32
	n := s.replicas
	// The workers share one stage object, so its park state flaps between
	// the transitions of whichever worker stored last; it is exact when the
	// whole crew is parked, which is the case a watchdog cares about.
	s.stats.setPark(StageAccepting, time.Now())
	for w := 0; w < n; w++ {
		nw.wg.Add(1)
		go nw.labeled(g.name, s.name, func() {
			defer nw.wg.Done()
			defer nw.recoverPanic(s.name)
			for {
				start := time.Now()
				b, err := in.pop(nw.done)
				if err != nil {
					return
				}
				s.stats.acceptWait.Add(int64(time.Since(start)))
				round := -1
				if !b.caboose {
					round = b.Round
				}
				nw.traceWait(s, b.pipe, round, start)
				if b.caboose {
					if int(seen.Add(1)) < n {
						_ = in.push(b, nw.done) // pass it to a sibling
					} else {
						s.stats.setPark(StageDone, time.Now())
						_ = out.push(b, nw.done) // last worker: done for real
					}
					return
				}
				t0 := time.Now()
				s.stats.setPark(StageWorking, t0)
				ferr := s.round(ctx, b)
				t1 := time.Now()
				s.stats.work.Add(int64(t1.Sub(t0)))
				s.stats.rounds.Add(1)
				s.stats.setPark(StageAccepting, t1)
				nw.traceWork(s, b.pipe, b.Round, t0)
				if ferr != nil {
					nw.fail(fmt.Errorf("fg: stage %q: %w", s.name, ferr))
					return
				}
				if err := out.push(b, nw.done); err != nil {
					return
				}
			}
		})
	}
}
