package fg

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestStatusEndpointMidRun serves the live status while a stage is wedged
// and checks both views: the JSON document classifies the hung stage
// blocked-on-put, and the text rendering names it.
func TestStatusEndpointMidRun(t *testing.T) {
	release := make(chan struct{})
	nw := NewNetwork("statusnet")
	p := nw.AddPipeline("main", Buffers(2), Rounds(4))
	p.AddStage("pass", func(ctx *Ctx, b *Buffer) error { return nil })
	p.AddStage("wedge", func(ctx *Ctx, b *Buffer) error {
		if b.Round == 1 {
			<-release
		}
		return nil
	})
	srv, err := nw.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan error, 1)
	go func() { done <- nw.Run() }()

	// Wait until the wedged stage has been parked past the display
	// threshold, then hit the endpoints.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			close(release)
			t.Fatal("stage never classified as blocked")
		}
		var stuck bool
		for _, h := range nw.Status().Stages {
			if h.Stage == "wedge" && h.State == HealthBlockedOnPut {
				stuck = true
			}
		}
		if stuck {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	var doc []NetworkStatus
	raw := scrape(t, "http://"+srv.Addr()+"/status.json")
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("/status.json is not valid JSON: %v\n%s", err, raw)
	}
	if len(doc) != 1 || doc[0].Network != "statusnet" || !doc[0].Running {
		t.Fatalf("status document = %+v", doc)
	}
	var wedge *StageHealth
	for i := range doc[0].Stages {
		if doc[0].Stages[i].Stage == "wedge" {
			wedge = &doc[0].Stages[i]
		}
	}
	if wedge == nil {
		t.Fatalf("no entry for the wedged stage: %+v", doc[0].Stages)
	}
	if wedge.State != HealthBlockedOnPut {
		t.Errorf("wedged stage served as %q, want %q", wedge.State, HealthBlockedOnPut)
	}

	text := scrape(t, "http://"+srv.Addr()+"/status")
	if !strings.Contains(text, "wedge") || !strings.Contains(text, HealthBlockedOnPut) {
		t.Errorf("/status text does not show the blocked stage:\n%s", text)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// After the run every stage reads done and the document says finished.
	after := nw.Status()
	if after.Running {
		t.Error("status still running after Run returned")
	}
	for _, h := range after.Stages {
		if h.State != HealthDone {
			t.Errorf("stage %s is %q after the run, want done", h.Stage, h.State)
		}
		if h.Utilization < 0 || h.Utilization > 1.5 {
			t.Errorf("stage %s utilization %v out of range", h.Stage, h.Utilization)
		}
	}
	if !strings.Contains(after.String(), "finished") {
		t.Errorf("post-run rendering:\n%s", after)
	}
}

// TestTraceDroppedMetric checks the registry surfaces a registered tracer's
// dropped-event counter as fg_trace_dropped_total.
func TestTraceDroppedMetric(t *testing.T) {
	tr := NewTracer(5)
	reg := NewMetricsRegistry()
	reg.RegisterTracer(tr)
	reg.RegisterTracer(tr)  // idempotent
	reg.RegisterTracer(nil) // nil-safe
	nw := NewNetwork("droppy")
	nw.SetTracer(tr)
	reg.RegisterNetwork(nw)
	p := nw.AddPipeline("main", Buffers(1), Rounds(50))
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() == 0 {
		t.Fatal("tracer dropped nothing; the test needs overflow")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "fg_trace_dropped_total") {
		t.Fatalf("scrape has no fg_trace_dropped_total:\n%s", out)
	}
	if strings.Count(out, `fg_trace_dropped_total{`) != 1 {
		t.Errorf("duplicate tracer registration produced multiple series:\n%s", out)
	}
	var n int
	for _, s := range reg.Samples() {
		if s.Name == "fg_trace_dropped_total" {
			n++
			if s.Value != float64(tr.Dropped()) {
				t.Errorf("fg_trace_dropped_total = %v, tracer dropped %d", s.Value, tr.Dropped())
			}
		}
	}
	if n != 1 {
		t.Errorf("Samples carries %d dropped series, want 1", n)
	}
}
