package fg

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsWorkAndWait(t *testing.T) {
	tr := NewTracer(0)
	nw := NewNetwork("traced")
	nw.SetTracer(tr)
	p := nw.AddPipeline("main", Buffers(2), Rounds(6))
	p.AddStage("slow", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	p.AddStage("fast", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	work, wait := 0, 0
	for _, e := range events {
		switch e.Kind {
		case EventWork:
			work++
			if e.End < e.Start {
				t.Errorf("event ends before it starts: %+v", e)
			}
		case EventWait:
			wait++
		}
	}
	if work != 12 { // 6 rounds x 2 stages
		t.Errorf("recorded %d work events, want 12", work)
	}
	if wait == 0 {
		t.Error("no wait events recorded; the fast stage must have waited on the slow one")
	}
	// Chronological order.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatal("Events() not sorted by start time")
		}
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer(5)
	nw := NewNetwork("limited")
	nw.SetTracer(tr)
	p := nw.AddPipeline("main", Buffers(1), Rounds(50))
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Events()); got > 5 {
		t.Errorf("tracer retained %d events, limit 5", got)
	}
}

func TestTracerDroppedCount(t *testing.T) {
	tr := NewTracer(5)
	nw := NewNetwork("dropped")
	nw.SetTracer(tr)
	p := nw.AddPipeline("main", Buffers(1), Rounds(50))
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() == 0 {
		t.Fatal("50 rounds against a 5-event limit dropped nothing")
	}
	if chart := tr.Gantt(40); !strings.Contains(chart, "dropped") {
		t.Errorf("Gantt header does not surface the dropped count:\n%s", chart)
	}
}

func TestWaitEventsCarryRound(t *testing.T) {
	tr := NewTracer(0)
	nw := NewNetwork("rounds")
	nw.SetTracer(tr)
	p := nw.AddPipeline("main", Buffers(1), Rounds(4))
	p.AddStage("slow", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	p.AddStage("fast", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	withRound := 0
	for _, e := range tr.Events() {
		if e.Kind == EventWait && e.Round >= 0 {
			withRound++
		}
	}
	// The fast stage waits out each of the slow stage's 2ms rounds; those
	// waits end with a data buffer whose round must be recorded.
	if withRound == 0 {
		t.Fatal("no wait event carries the round of the buffer that ended it")
	}
}

func TestRetryEventsTraced(t *testing.T) {
	tr := NewTracer(0)
	nw := NewNetwork("retries")
	nw.SetTracer(tr)
	p := nw.AddPipeline("main", Buffers(1), Rounds(3))
	fails := map[int]bool{}
	flaky := func(ctx *Ctx, b *Buffer) error {
		if !fails[b.Round] {
			fails[b.Round] = true
			return errors.New("transient")
		}
		return nil
	}
	p.AddStage("flaky", Retry(flaky, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	retries := 0
	for _, e := range tr.Events() {
		if e.Kind == EventRetry {
			retries++
			if e.Stage != "flaky" || e.Round < 0 {
				t.Errorf("retry event misattributed: %+v", e)
			}
		}
	}
	if retries != 3 { // one failed first attempt per round
		t.Errorf("recorded %d retry events, want 3", retries)
	}
}

func TestGanttRendering(t *testing.T) {
	tr := NewTracer(0)
	nw := NewNetwork("gantt")
	nw.SetTracer(tr)
	p := nw.AddPipeline("main", Buffers(2), Rounds(4))
	p.AddStage("work", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	chart := tr.Gantt(60)
	if !strings.Contains(chart, "main/work") {
		t.Errorf("chart missing stage row:\n%s", chart)
	}
	if !strings.Contains(chart, "#") {
		t.Errorf("chart shows no work:\n%s", chart)
	}
}

func TestGanttEmpty(t *testing.T) {
	tr := NewTracer(0)
	if got := tr.Gantt(40); !strings.Contains(got, "no events") {
		t.Errorf("empty trace rendered %q", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(0)
	nw := NewNetwork("chrome")
	nw.SetTracer(tr)
	p := nw.AddPipeline("main", Buffers(2), Rounds(4))
	p.AddStage("slow", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	p.AddStage("fast", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	// An externally recorded comm event must round-trip with its byte count.
	s, e := tr.Span(time.Now().Add(-time.Millisecond), time.Now())
	tr.Record(Event{Stage: "comm.send", Pipeline: "node0", Kind: EventComm, Round: -1, Bytes: 4096, Start: s, End: e})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", decoded.DisplayTimeUnit)
	}
	names := map[string]bool{}
	cats := map[string]bool{}
	lastTs := -1.0
	xEvents := 0
	for _, ev := range decoded.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" && ev.Name != "fg_trace_meta" {
				t.Errorf("metadata event %q, want thread_name or fg_trace_meta", ev.Name)
			}
			if n, ok := ev.Args["name"].(string); ok {
				names[n] = true
			}
		case "s", "f":
			// Flow events carry the transfer link; ts order applies to X only.
		case "X":
			xEvents++
			cats[ev.Cat] = true
			if ev.Ts < lastTs {
				t.Fatalf("X events not in monotonic ts order: %v after %v", ev.Ts, lastTs)
			}
			lastTs = ev.Ts
			if ev.Dur < 0 {
				t.Errorf("negative duration on %q", ev.Name)
			}
			if _, ok := ev.Args["round"]; !ok {
				t.Errorf("X event %q missing round arg", ev.Name)
			}
			if ev.Name == "comm.send" {
				if b, _ := ev.Args["bytes"].(float64); b != 4096 {
					t.Errorf("comm event bytes = %v, want 4096", ev.Args["bytes"])
				}
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	for _, want := range []string{"main/slow", "main/fast", "node0/comm.send"} {
		if !names[want] {
			t.Errorf("trace missing thread row %q (have %v)", want, names)
		}
	}
	for _, want := range []string{"work", "comm"} {
		if !cats[want] {
			t.Errorf("trace missing %q category (have %v)", want, cats)
		}
	}
	if xEvents < 8 { // 4 rounds x 2 stages work events at minimum
		t.Errorf("only %d X events recorded", xEvents)
	}
}

func TestSetTracerAfterRunPanics(t *testing.T) {
	nw := NewNetwork("late")
	p := nw.AddPipeline("main", Rounds(1))
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetTracer after Run did not panic")
		}
	}()
	nw.SetTracer(NewTracer(0))
}
