package fg

import (
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsWorkAndWait(t *testing.T) {
	tr := NewTracer(0)
	nw := NewNetwork("traced")
	nw.SetTracer(tr)
	p := nw.AddPipeline("main", Buffers(2), Rounds(6))
	p.AddStage("slow", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	p.AddStage("fast", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	work, wait := 0, 0
	for _, e := range events {
		switch e.Kind {
		case EventWork:
			work++
			if e.End < e.Start {
				t.Errorf("event ends before it starts: %+v", e)
			}
		case EventWait:
			wait++
		}
	}
	if work != 12 { // 6 rounds x 2 stages
		t.Errorf("recorded %d work events, want 12", work)
	}
	if wait == 0 {
		t.Error("no wait events recorded; the fast stage must have waited on the slow one")
	}
	// Chronological order.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatal("Events() not sorted by start time")
		}
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer(5)
	nw := NewNetwork("limited")
	nw.SetTracer(tr)
	p := nw.AddPipeline("main", Buffers(1), Rounds(50))
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Events()); got > 5 {
		t.Errorf("tracer retained %d events, limit 5", got)
	}
}

func TestGanttRendering(t *testing.T) {
	tr := NewTracer(0)
	nw := NewNetwork("gantt")
	nw.SetTracer(tr)
	p := nw.AddPipeline("main", Buffers(2), Rounds(4))
	p.AddStage("work", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	chart := tr.Gantt(60)
	if !strings.Contains(chart, "main/work") {
		t.Errorf("chart missing stage row:\n%s", chart)
	}
	if !strings.Contains(chart, "#") {
		t.Errorf("chart shows no work:\n%s", chart)
	}
}

func TestGanttEmpty(t *testing.T) {
	tr := NewTracer(0)
	if got := tr.Gantt(40); !strings.Contains(got, "no events") {
		t.Errorf("empty trace rendered %q", got)
	}
}

func TestSetTracerAfterRunPanics(t *testing.T) {
	nw := NewNetwork("late")
	p := nw.AddPipeline("main", Rounds(1))
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetTracer after Run did not panic")
		}
	}()
	nw.SetTracer(NewTracer(0))
}
