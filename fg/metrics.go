package fg

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Live metrics. A MetricsRegistry turns Network.Stats snapshots (and any
// extra collectors, such as the cluster's communication counters) into
// metric samples on demand, and serves them in Prometheus text format over
// HTTP. The underlying counters are the same lock-free atomics Stats reads,
// so scraping a registry mid-run is cheap and safe and a network that never
// registers pays nothing. All registries also appear under the process-wide
// expvar variable "fg" (at /debug/vars), published once, lazily.

// An EmitFunc receives one metric sample. Collectors registered with
// RegisterFunc call it once per sample; the labels map must not be retained
// or mutated after the call. The signature is plain (no fg types) so
// packages that must not import fg — the cluster, say — can still feed a
// registry.
type EmitFunc func(name string, labels map[string]string, value float64)

// A Sample is one metric observation in a registry snapshot.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// A MetricsRegistry collects samples from registered networks and
// collector functions. The zero value is unusable; create with
// NewMetricsRegistry. Registries are meant to be few and long-lived (one
// per program, typically), not one per pass.
type MetricsRegistry struct {
	mu      sync.Mutex
	nets    []*Network
	funcs   []func(EmitFunc)
	tracers []*Tracer
	tuners  []*AutoTuner
	peers   func() []PeerHealth
}

var (
	regMu      sync.Mutex
	registries []*MetricsRegistry
	expvarOnce sync.Once
)

// NewMetricsRegistry creates a registry and links it into the process-wide
// expvar export: the variable "fg" (served by expvar's /debug/vars) renders
// every live registry's samples.
func NewMetricsRegistry() *MetricsRegistry {
	r := &MetricsRegistry{}
	regMu.Lock()
	registries = append(registries, r)
	regMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("fg", expvar.Func(func() any {
			regMu.Lock()
			regs := append([]*MetricsRegistry(nil), registries...)
			regMu.Unlock()
			all := []Sample{}
			for _, r := range regs {
				all = append(all, r.Samples()...)
			}
			return all
		}))
	})
	return r
}

// RegisterNetwork adds a network to the registry. Its per-stage and
// per-pipeline statistics appear in every subsequent snapshot, live during
// Run and frozen at their totals after.
func (r *MetricsRegistry) RegisterNetwork(nw *Network) {
	r.mu.Lock()
	r.nets = append(r.nets, nw)
	r.mu.Unlock()
}

// RegisterTracer adds a tracer to the registry: its dropped-event count
// appears as fg_trace_dropped_total, so a scraper learns the trace timeline
// is truncated without parsing the trace. Registering the same tracer again
// is a no-op (Observe.Attach registers its tracer once per network).
func (r *MetricsRegistry) RegisterTracer(tr *Tracer) {
	if tr == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.tracers {
		if have == tr {
			return
		}
	}
	r.tracers = append(r.tracers, tr)
}

// Networks returns the currently registered networks, in registration
// order — the seam the cluster-telemetry collector reads live stats
// through without the registry knowing about ranks.
func (r *MetricsRegistry) Networks() []*Network {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Network(nil), r.nets...)
}

// Tuners returns the currently registered auto-tuners.
func (r *MetricsRegistry) Tuners() []*AutoTuner {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*AutoTuner(nil), r.tuners...)
}

// RegisterTuner adds an auto-tuner to the registry: its adjustment count
// appears as fg_autotune_adjustments_total and every worker knob's current
// position as an fg_autotune_workers gauge, so a scrape shows where the
// tuner has moved the knobs without grepping logs. Registering the same
// tuner again (or nil) is a no-op.
func (r *MetricsRegistry) RegisterTuner(t *AutoTuner) {
	if t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.tuners {
		if have == t {
			return
		}
	}
	r.tuners = append(r.tuners, t)
}

// RegisterPeerHealth installs a source of cluster peer liveness, replacing
// any previous one: the snapshot appears in /status (text), /status.json
// (a "peers" section), and nowhere in /metrics — the cluster's own
// collector emits the fg_peer_* series. The function must be safe to call
// from any goroutine; nil removes the source. The signature is fg-typed so
// the harness adapts cluster.PeerHealth without this package importing the
// cluster.
func (r *MetricsRegistry) RegisterPeerHealth(f func() []PeerHealth) {
	r.mu.Lock()
	r.peers = f
	r.mu.Unlock()
}

// peerHealth snapshots the registered peer source, nil when absent.
func (r *MetricsRegistry) peerHealth() []PeerHealth {
	r.mu.Lock()
	f := r.peers
	r.mu.Unlock()
	if f == nil {
		return nil
	}
	return f()
}

// RegisterFunc adds a collector called on every snapshot. Collectors must
// be safe to call from any goroutine.
func (r *MetricsRegistry) RegisterFunc(f func(EmitFunc)) {
	if f == nil {
		return
	}
	r.mu.Lock()
	r.funcs = append(r.funcs, f)
	r.mu.Unlock()
}

// Samples takes a snapshot of every registered source.
func (r *MetricsRegistry) Samples() []Sample {
	r.mu.Lock()
	nets := append([]*Network(nil), r.nets...)
	funcs := append([]func(EmitFunc){}, r.funcs...)
	tracers := append([]*Tracer(nil), r.tracers...)
	tuners := append([]*AutoTuner(nil), r.tuners...)
	r.mu.Unlock()
	var out []Sample
	emit := func(name string, labels map[string]string, value float64) {
		out = append(out, Sample{Name: name, Labels: labels, Value: value})
	}
	for _, nw := range nets {
		emitNetwork(nw.Stats(), emit)
	}
	for i, tr := range tracers {
		emit("fg_trace_dropped_total",
			map[string]string{"tracer": strconv.Itoa(i)}, float64(tr.Dropped()))
	}
	for i, t := range tuners {
		emit("fg_autotune_adjustments_total",
			map[string]string{"tuner": strconv.Itoa(i)}, float64(t.Adjustments()))
		for _, k := range t.KnobStates() {
			emit("fg_autotune_workers",
				map[string]string{"tuner": strconv.Itoa(i), "stage": k.Stage}, float64(k.Workers))
		}
	}
	for _, f := range funcs {
		f(emit)
	}
	return out
}

// emitNetwork flattens one stats snapshot into samples.
func emitNetwork(st NetworkStats, emit EmitFunc) {
	running := 0.0
	if st.Running {
		running = 1
	}
	emit("fg_network_running", map[string]string{"network": st.Name}, running)
	emit("fg_network_wall_seconds", map[string]string{"network": st.Name}, st.Wall.Seconds())
	for _, p := range st.Pipelines {
		l := func() map[string]string {
			return map[string]string{"network": st.Name, "pipeline": p.Name}
		}
		emit("fg_pipeline_rounds_total", l(), float64(p.Rounds))
		emit("fg_pipeline_buffer_bytes", l(), float64(p.BufferBytes))
		emit("fg_pipeline_pool_idle", l(), float64(p.PoolIdle))
		emit("fg_pipeline_pool_cap", l(), float64(p.PoolCap))
		emit("fg_pipeline_buffers_effective", l(), float64(p.EffectiveBuffers))
	}
	for _, s := range st.Stages {
		l := func() map[string]string {
			return map[string]string{"network": st.Name, "pipeline": s.Pipeline, "stage": s.Stage}
		}
		emit("fg_stage_rounds_total", l(), float64(s.Rounds))
		emit("fg_stage_work_seconds_total", l(), s.Work.Seconds())
		emit("fg_stage_wait_seconds_total", l(), s.AcceptWait.Seconds())
		emit("fg_stage_queue_len", l(), float64(s.QueueLen))
		emit("fg_stage_queue_cap", l(), float64(s.QueueCap))
		emit("fg_stage_queue_slow_push_total", l(), float64(s.SlowPushes))
	}
}

// metricHelp documents the metrics this package emits; collectors may emit
// names outside this table (they get a generic HELP line).
var metricHelp = map[string]string{
	"fg_network_running":             "1 while the network's Run is in flight",
	"fg_network_wall_seconds":        "elapsed run time (live) or final run duration",
	"fg_pipeline_rounds_total":       "buffers emitted by the pipeline's source",
	"fg_pipeline_buffer_bytes":       "capacity of each of the pipeline's buffers",
	"fg_pipeline_pool_idle":          "buffers sitting idle in the pipeline's pool",
	"fg_pipeline_pool_cap":           "capacity of the pipeline's buffer pool",
	"fg_pipeline_buffers_effective":  "pool buffers the source currently keeps circulating (auto-tuned)",
	"fg_stage_rounds_total":          "buffers accepted by the stage",
	"fg_stage_work_seconds_total":    "time spent inside the stage function",
	"fg_stage_wait_seconds_total":    "time the stage spent blocked waiting to accept",
	"fg_stage_queue_len":             "buffers waiting in the stage's input queue",
	"fg_stage_queue_cap":             "capacity of the stage's input queue",
	"fg_stage_queue_slow_push_total": "pushes into the stage's input queue that missed the non-blocking fast path (invariant violations)",
	"fg_trace_dropped_total":         "trace events discarded because the tracer was full",
	"fg_autotune_adjustments_total":  "worker-knob and buffer adjustments the auto-tuner has made",
	"fg_autotune_workers":            "current worker count of the stage's auto-tuned knob",
	// Emitted by the cluster's collector (cluster.EmitMetrics), documented
	// here because this map is the exposition format's one HELP source.
	"fg_peer_last_seen_seconds": "seconds since the last heartbeat from the peer",
	"fg_peer_suspect":           "1 while the peer is silent past the suspect threshold",
	"fg_peer_dead":              "1 once the peer has been declared dead",
	// Emitted by the telemetry aggregator (cluster.TelemetryAggregator) on
	// the fleet-level /cluster/metrics endpoint.
	"fleet_rank_fresh":                    "1 while the rank's latest telemetry record is younger than the staleness threshold",
	"fleet_rank_age_seconds":              "age of the rank's latest telemetry record at the aggregator",
	"fleet_rank_stalled":                  "1 while the rank's latest record carries a watchdog stall report",
	"fleet_rank_suspect":                  "1 while the aggregator's failure detector marks the rank suspect",
	"fleet_rank_dead":                     "1 once the aggregator's failure detector declared the rank dead",
	"fleet_rank_telemetry_seq":            "sequence number of the rank's latest telemetry record",
	"fleet_comm_messages_sent_total":      "messages sent by the rank, from its latest record",
	"fleet_comm_bytes_sent_total":         "bytes sent by the rank, from its latest record",
	"fleet_comm_messages_recvd_total":     "messages received by the rank, from its latest record",
	"fleet_comm_bytes_recvd_total":        "bytes received by the rank, from its latest record",
	"fleet_comm_sends_blocked":            "the rank's goroutines parked in a Send at snapshot time",
	"fleet_comm_recvs_blocked":            "the rank's goroutines parked in a Recv at snapshot time",
	"fleet_comm_reconnects_total":         "TCP connections the rank redialed after a failure",
	"fleet_autotune_adjustments_total":    "auto-tuner adjustments on the rank, from its latest record",
	"fleet_autotune_workers":              "current worker count of the rank's auto-tuned stage knob",
	"fleet_stage_work_seconds_total":      "time the rank's stage spent inside its stage function",
	"fleet_stage_rounds_total":            "buffers accepted by the rank's stage",
	"fleet_stage_queue_len":               "buffers waiting in the rank's stage input queue",
	"fleet_bottleneck_work_seconds":       "work of the stage governing the rank's wall clock",
	"fleet_bottleneck_governing":          "1 for the rank whose governing stage governs the whole job",
	"fleet_telemetry_decode_errors_total": "inbound telemetry records dropped as undecodable or newer-version",
}

// WritePrometheus writes the current samples in Prometheus text exposition
// format (version 0.0.4), grouped by metric with HELP and TYPE headers.
// Names ending in _total are typed counter, everything else gauge.
func (r *MetricsRegistry) WritePrometheus(w io.Writer) error {
	samples := r.Samples()
	byName := map[string][]Sample{}
	var names []string
	for _, s := range samples {
		if _, ok := byName[s.Name]; !ok {
			names = append(names, s.Name)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	sort.Strings(names)
	for _, name := range names {
		help := metricHelp[name]
		if help == "" {
			help = "collector-supplied metric"
		}
		typ := "gauge"
		if strings.HasSuffix(name, "_total") {
			typ = "counter"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ); err != nil {
			return err
		}
		group := byName[name]
		sort.SliceStable(group, func(i, j int) bool {
			return labelString(group[i].Labels) < labelString(group[j].Labels)
		})
		for _, s := range group {
			if _, err := fmt.Fprintf(w, "%s%s %g\n", name, labelString(s.Labels), s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelString renders {k="v",...} with keys sorted, empty for no labels.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes exactly the characters the exposition format needs
		// escaped in label values: backslash, double quote, and newline.
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// ServeHTTP serves the Prometheus text format, making the registry a
// drop-in http.Handler for a /metrics route.
func (r *MetricsRegistry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// A MetricsServer is a running metrics HTTP endpoint; see
// MetricsRegistry.Serve and Network.ServeMetrics.
type MetricsServer struct {
	registry *MetricsRegistry
	ln       net.Listener
	srv      *http.Server
}

// Serve starts an HTTP server on addr (host:port; :0 picks a free port)
// exposing the registry at /metrics (Prometheus text format), live network
// health at /status (text) and /status.json, and the process's expvar
// state at /debug/vars. It returns immediately; use Addr for the bound
// address and Close to stop.
func (r *MetricsRegistry) Serve(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fg: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r)
	mux.Handle("/status", r.StatusTextHandler())
	mux.Handle("/status.json", r.StatusJSONHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{registry: r, ln: ln, srv: srv}, nil
}

// Registry returns the registry the server exposes, for registering
// further networks or collectors while serving.
func (ms *MetricsServer) Registry() *MetricsRegistry { return ms.registry }

// Addr returns the server's bound address.
func (ms *MetricsServer) Addr() string { return ms.ln.Addr().String() }

// Close stops the server.
func (ms *MetricsServer) Close() error { return ms.srv.Close() }

// ServeMetrics starts a metrics endpoint for this network: a fresh registry
// with the network registered, served on addr. It is the one-network
// convenience; programs with several networks (or cluster collectors)
// build a MetricsRegistry themselves. May be called before or during Run.
func (nw *Network) ServeMetrics(addr string) (*MetricsServer, error) {
	r := NewMetricsRegistry()
	r.RegisterNetwork(nw)
	return r.Serve(addr)
}
