package fg_test

// Fault-tolerance tests: panic isolation, context cancellation, retryable
// stages, safe Stop, error propagation across disjoint groups, and
// goroutine-leak checks on every shutdown path. These are black-box tests
// (package fg_test) so they can share the leak checker in internal/check.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/check"
)

func nop(ctx *fg.Ctx, b *fg.Buffer) error { return nil }

func TestRoundStagePanicBecomesError(t *testing.T) {
	check.NoLeakedGoroutines(t)
	nw := fg.NewNetwork("panic-round")
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(10))
	p.AddStage("boom", func(ctx *fg.Ctx, b *fg.Buffer) error {
		if b.Round == 3 {
			panic("kaboom")
		}
		return nil
	})
	err := nw.Run()
	if err == nil {
		t.Fatal("Run returned nil after a stage panic")
	}
	var pe *fg.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a PanicError: %v", err)
	}
	if pe.Stage != "boom" {
		t.Errorf("PanicError.Stage = %q, want %q", pe.Stage, "boom")
	}
	if !strings.Contains(err.Error(), `"boom"`) {
		t.Errorf("error does not name the stage: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
}

func TestFreeStagePanicBecomesError(t *testing.T) {
	check.NoLeakedGoroutines(t)
	nw := fg.NewNetwork("panic-free")
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(10))
	p.AddFreeStage("freeboom", func(ctx *fg.Ctx) error {
		ctx.Accept()
		panic(errors.New("free stage exploded"))
	})
	err := nw.Run()
	var pe *fg.PanicError
	if !errors.As(err, &pe) || pe.Stage != "freeboom" {
		t.Fatalf("want PanicError from %q, got %v", "freeboom", err)
	}
}

func TestReplicatedStagePanicBecomesError(t *testing.T) {
	check.NoLeakedGoroutines(t)
	nw := fg.NewNetwork("panic-replicated")
	p := nw.AddPipeline("main", fg.Buffers(3), fg.BufferBytes(8), fg.Rounds(20))
	p.AddStage("work", func(ctx *fg.Ctx, b *fg.Buffer) error {
		if b.Round == 7 {
			panic("worker down")
		}
		return nil
	}).Replicate(3)
	err := nw.Run()
	var pe *fg.PanicError
	if !errors.As(err, &pe) || pe.Stage != "work" {
		t.Fatalf("want PanicError from %q, got %v", "work", err)
	}
}

func TestForkRoutePanicBecomesError(t *testing.T) {
	check.NoLeakedGoroutines(t)
	nw := fg.NewNetwork("panic-fork")
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(10))
	f := p.AddFork("router", 2, func(ctx *fg.Ctx, b *fg.Buffer) (int, error) {
		if b.Round == 2 {
			panic("no route")
		}
		return b.Round % 2, nil
	})
	f.Branch(0).AddStage("left", nop)
	f.Branch(1).AddStage("right", nop)
	f.Join()
	err := nw.Run()
	var pe *fg.PanicError
	if !errors.As(err, &pe) || pe.Stage != "router" {
		t.Fatalf("want PanicError from %q, got %v", "router", err)
	}
}

func TestRunContextExpiredDeadline(t *testing.T) {
	check.NoLeakedGoroutines(t)
	nw := fg.NewNetwork("expired")
	var ran atomic.Bool
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(10))
	p.AddStage("never", func(ctx *fg.Ctx, b *fg.Buffer) error {
		ran.Store(true)
		return nil
	})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	err := nw.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("expired deadline took %v to return", d)
	}
	if ran.Load() {
		t.Error("a stage ran despite the expired deadline")
	}
}

func TestRunContextCancellationMidRun(t *testing.T) {
	check.NoLeakedGoroutines(t)
	nw := fg.NewNetwork("cancel")
	p := nw.AddPipeline("main", fg.Buffers(3), fg.BufferBytes(8), fg.Unlimited())
	started := make(chan struct{})
	var once sync.Once
	p.AddStage("spin", func(ctx *fg.Ctx, b *fg.Buffer) error {
		once.Do(func() { close(started) })
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	start := time.Now()
	err := nw.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v to unwind", d)
	}
}

func TestRunContextDeadlineMidRun(t *testing.T) {
	check.NoLeakedGoroutines(t)
	nw := fg.NewNetwork("deadline")
	p := nw.AddPipeline("main", fg.Buffers(3), fg.BufferBytes(8), fg.Unlimited())
	p.AddStage("spin", nop)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := nw.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want DeadlineExceeded", err)
	}
}

// TestStopIsSafeAnytime covers the Stop contract: before Run, repeated,
// concurrent with Run's startup, racing natural completion, and after the
// network has finished. Run with -race, any unsynchronized wake-channel
// access shows up here.
func TestStopIsSafeAnytime(t *testing.T) {
	check.NoLeakedGoroutines(t)
	t.Run("before-run-and-twice", func(t *testing.T) {
		nw := fg.NewNetwork("stop-early")
		p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Unlimited())
		p.AddStage("nop", nop)
		p.Stop()
		p.Stop()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.Stop()
			}()
		}
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		p.Stop() // after completion
	})
	t.Run("racing-natural-completion", func(t *testing.T) {
		nw := fg.NewNetwork("stop-race")
		p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(50))
		p.AddStage("nop", nop)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-stop
				p.Stop()
			}()
		}
		close(stop) // stops fire while the 50 rounds drain
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	})
}

// TestDisjointGroupErrorPropagation: a stage error in one group must shut
// down every other group of the network. The second pipeline is Unlimited,
// so without propagation Run would hang until the test timeout.
func TestDisjointGroupErrorPropagation(t *testing.T) {
	check.NoLeakedGoroutines(t)
	sentinel := errors.New("group a failed")
	nw := fg.NewNetwork("multi-group")
	a := nw.AddPipeline("a", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(100))
	a.AddStage("fail", func(ctx *fg.Ctx, b *fg.Buffer) error {
		if b.Round == 2 {
			return sentinel
		}
		return nil
	})
	b := nw.AddPipeline("b", fg.Buffers(2), fg.BufferBytes(8), fg.Unlimited())
	b.AddStage("spin", func(ctx *fg.Ctx, bb *fg.Buffer) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	start := time.Now()
	err := nw.Run()
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run = %v, want %v", err, sentinel)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cross-group shutdown took %v", d)
	}
}

// TestBuildErrorLaunchesNothing: a network that fails validation must not
// leave any goroutine behind — even when other groups of the same network
// were valid.
func TestBuildErrorLaunchesNothing(t *testing.T) {
	check.NoLeakedGoroutines(t)
	nw := fg.NewNetwork("bad-build")
	ok := nw.AddPipeline("ok", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(5))
	ok.AddStage("nop", nop)
	nw.AddPipeline("empty") // no stages: build must fail
	before := runtime.NumGoroutine()
	err := nw.Run()
	if err == nil {
		t.Fatal("Run accepted a pipeline with no stages")
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("failed build launched goroutines: %d before, %d after", before, after)
	}
}

func TestRetryAbsorbsTransientErrors(t *testing.T) {
	check.NoLeakedGoroutines(t)
	var attempts atomic.Int32
	nw := fg.NewNetwork("retry-ok")
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(1))
	p.AddStage("flaky", fg.Retry(func(ctx *fg.Ctx, b *fg.Buffer) error {
		if attempts.Add(1) <= 2 {
			return errors.New("transient")
		}
		b.Data[0] = 42
		b.N = 1
		return nil
	}, fg.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: 0.5, Seed: 3}))
	var saw atomic.Int32
	p.AddStage("check", func(ctx *fg.Ctx, b *fg.Buffer) error {
		saw.Store(int32(b.Data[0]))
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("made %d attempts, want 3", got)
	}
	if saw.Load() != 42 {
		t.Error("successful attempt's write did not reach the next stage")
	}
}

func TestRetryExhaustedReturnsLastError(t *testing.T) {
	check.NoLeakedGoroutines(t)
	sentinel := errors.New("disk on fire")
	var attempts atomic.Int32
	nw := fg.NewNetwork("retry-exhausted")
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(1))
	p.AddStage("doomed", fg.Retry(func(ctx *fg.Ctx, b *fg.Buffer) error {
		attempts.Add(1)
		return sentinel
	}, fg.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	err := nw.Run()
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run = %v, want wrapped %v", err, sentinel)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("error does not report the attempt count: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("made %d attempts, want 3", got)
	}
}

func TestRetryPermanentShortCircuits(t *testing.T) {
	check.NoLeakedGoroutines(t)
	sentinel := errors.New("record malformed")
	var attempts atomic.Int32
	nw := fg.NewNetwork("retry-permanent")
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(1))
	p.AddStage("fatal", fg.Retry(func(ctx *fg.Ctx, b *fg.Buffer) error {
		attempts.Add(1)
		return fg.Permanent(sentinel)
	}, fg.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	err := nw.Run()
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run = %v, want %v", err, sentinel)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("permanent error was attempted %d times, want 1", got)
	}
}

func TestRetryAttemptTimeout(t *testing.T) {
	check.NoLeakedGoroutines(t)
	var attempts atomic.Int32
	nw := fg.NewNetwork("retry-timeout")
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(1))
	p.AddStage("stall", fg.Retry(func(ctx *fg.Ctx, b *fg.Buffer) error {
		if attempts.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // hangs past the timeout
			return nil
		}
		b.Data[0] = 7
		return nil
	}, fg.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, AttemptTimeout: 40 * time.Millisecond}))
	var saw atomic.Int32
	p.AddStage("check", func(ctx *fg.Ctx, b *fg.Buffer) error {
		saw.Store(int32(b.Data[0]))
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("made %d attempts, want 2 (one timed out)", got)
	}
	if saw.Load() != 7 {
		t.Error("retried attempt's result was not adopted")
	}
}

func TestRetryPanicIsNotRetried(t *testing.T) {
	check.NoLeakedGoroutines(t)
	var attempts atomic.Int32
	nw := fg.NewNetwork("retry-panic")
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(1))
	p.AddStage("bugged", fg.Retry(func(ctx *fg.Ctx, b *fg.Buffer) error {
		attempts.Add(1)
		panic("bug, not a transient fault")
	}, fg.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, AttemptTimeout: time.Second}))
	err := nw.Run()
	var pe *fg.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run = %v, want PanicError", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("panicking stage was attempted %d times, want 1", got)
	}
}

func TestPermanentMarker(t *testing.T) {
	if fg.Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
	base := errors.New("x")
	if !fg.IsPermanent(fg.Permanent(base)) {
		t.Error("Permanent error not recognized")
	}
	if fg.IsPermanent(base) {
		t.Error("plain error recognized as permanent")
	}
	if !errors.Is(fg.Permanent(base), base) {
		t.Error("Permanent breaks errors.Is")
	}
	if !fg.IsPermanent(fmt.Errorf("wrapped: %w", fg.Permanent(base))) {
		t.Error("wrapped Permanent not recognized")
	}
}

// A canceled run context must end a Retry-wrapped stage promptly: the
// wrapper returns the context error marked permanent instead of burning the
// remaining attempt budget against a network that can no longer accept a
// result. This exercises the AttemptTimeout path, where the in-flight
// attempt is abandoned the moment the network shuts down.
func TestRetryCanceledContextAbandonsInFlightAttempt(t *testing.T) {
	check.NoLeakedGoroutines(t)
	release := make(chan struct{})
	defer close(release)
	var attempts atomic.Int32
	started := make(chan struct{})
	var once sync.Once
	var stageErr atomic.Value
	inner := fg.Retry(func(ctx *fg.Ctx, b *fg.Buffer) error {
		attempts.Add(1)
		once.Do(func() { close(started) })
		<-release // I/O the context cannot interrupt
		return errors.New("transient")
	}, fg.RetryPolicy{MaxAttempts: 100, BaseDelay: time.Millisecond, AttemptTimeout: 10 * time.Second})
	nw := fg.NewNetwork("retry-cancel-inflight")
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(1))
	p.AddStage("hung", func(ctx *fg.Ctx, b *fg.Buffer) error {
		err := inner(ctx, b)
		stageErr.Store(err)
		return err
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- nw.RunContext(ctx) }()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return promptly after cancel; the attempt was not abandoned")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("canceled run burned %d attempts, want 1", got)
	}
	err, _ := stageErr.Load().(error)
	if err == nil {
		t.Fatal("wrapped stage never returned")
	}
	if !fg.IsPermanent(err) {
		t.Errorf("abandoned retry returned a non-permanent error: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("abandoned retry lost the context error: %v", err)
	}
}

// Same contract on the backoff path: when an attempt fails after the
// network has already shut down, the wrapper must not classify the failure
// as transient — it returns the context error, permanent, with no further
// attempts.
func TestRetryCanceledContextSkipsBackoffAttempts(t *testing.T) {
	check.NoLeakedGoroutines(t)
	var attempts atomic.Int32
	started := make(chan struct{})
	var once sync.Once
	release := make(chan struct{})
	var stageErr atomic.Value
	inner := fg.Retry(func(ctx *fg.Ctx, b *fg.Buffer) error {
		attempts.Add(1)
		once.Do(func() { close(started) })
		<-release // held until the test has canceled the context
		return errors.New("transient")
	}, fg.RetryPolicy{MaxAttempts: 100, BaseDelay: time.Millisecond})
	nw := fg.NewNetwork("retry-cancel-backoff")
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(1))
	p.AddStage("flaky", func(ctx *fg.Ctx, b *fg.Buffer) error {
		err := inner(ctx, b)
		stageErr.Store(err)
		return err
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- nw.RunContext(ctx) }()
	<-started
	cancel()
	// Release the attempt only once the cancellation has reached the
	// network, so its transient failure lands on a dead network.
	for nw.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("canceled run burned %d attempts, want 1", got)
	}
	err, _ := stageErr.Load().(error)
	if err == nil {
		t.Fatal("wrapped stage never returned")
	}
	if !fg.IsPermanent(err) {
		t.Errorf("abandoned retry returned a non-permanent error: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("abandoned retry lost the context error: %v", err)
	}
}
