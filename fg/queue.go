package fg

import "errors"

// errShutdown is returned by queue operations when the network has been
// aborted; runners treat it as a signal to exit quietly.
var errShutdown = errors.New("fg: network shut down")

// A queue carries buffers between consecutive stages. Its capacity is sized
// to the total number of buffers that can ever be in flight through it (the
// owning pipelines' pool sizes plus their cabooses), so pushes never block:
// as in FG, a stage conveys a buffer and immediately turns around to accept
// its next one. Backpressure comes from the finite buffer pool, not from
// the queues.
type queue struct {
	ch chan *Buffer
}

func newQueue(capacity int) *queue {
	return &queue{ch: make(chan *Buffer, capacity)}
}

// push enqueues b, failing only if the network aborts first.
func (q *queue) push(b *Buffer, done <-chan struct{}) error {
	select {
	case q.ch <- b:
		return nil
	default:
	}
	// The queue should never fill by construction, but guard against abort
	// rather than blocking forever if an invariant is broken.
	select {
	case q.ch <- b:
		return nil
	case <-done:
		return errShutdown
	}
}

// pop dequeues the next buffer, failing if the network aborts while empty.
func (q *queue) pop(done <-chan struct{}) (*Buffer, error) {
	select {
	case b := <-q.ch:
		return b, nil
	default:
	}
	select {
	case b := <-q.ch:
		return b, nil
	case <-done:
		return nil, errShutdown
	}
}
