package fg

import (
	"errors"
	"sync/atomic"

	"github.com/fg-go/fg/internal/spsc"
)

// errShutdown is returned by queue operations when the network has been
// aborted; runners treat it as a signal to exit quietly.
var errShutdown = errors.New("fg: network shut down")

// A queue carries buffers between consecutive stages. Its capacity is sized
// to the total number of buffers that can ever be in flight through it (the
// owning pipelines' pool sizes plus their cabooses), so pushes never block:
// as in FG, a stage conveys a buffer and immediately turns around to accept
// its next one. Backpressure comes from the finite buffer pool, not from
// the queues.
//
// Two implementations exist. ringQueue wraps a lock-free SPSC ring
// (internal/spsc) and is selected by group.build for every queue with
// exactly one producing and one consuming goroutine — the straight-line
// segments that carry almost all traffic. chanQueue wraps a buffered Go
// channel and remains for the edges with more than one goroutine on a side:
// queues into or out of a replicated stage (n workers share them, and the
// caboose is pushed back into the input queue) and the input queue of a
// join (every branch tail plus the fork's bypass pushes into it). Both
// implementations have identical semantics: FIFO per producer, a
// non-blocking fast path, and a blocking slow path released by the
// network's done channel.
//
// A push that misses the fast path breaks the sized-to-never-fill
// invariant; both implementations count it (slowPushes) and invoke the
// build-time hook so the breach surfaces in stats, metrics, and the flight
// recorder instead of hiding as latency.
type queue interface {
	// push enqueues b, failing only if the network aborts first.
	push(b *Buffer, done <-chan struct{}) error
	// pushN enqueues bs in order — the batched hand-off. The ring
	// implementation publishes the whole batch with one atomic store.
	pushN(bs []*Buffer, done <-chan struct{}) error
	// pop dequeues the next buffer, failing if the network aborts while
	// the queue is empty.
	pop(done <-chan struct{}) (*Buffer, error)
	// tryPop dequeues without blocking; ok=false when empty.
	tryPop() (*Buffer, bool)
	// len and cap report the queue's occupancy and capacity, safe from any
	// goroutine (Stats reads them mid-run).
	len() int
	cap() int
	// slowPushes counts pushes that missed the non-blocking fast path —
	// each one a violation of the sized-to-never-fill invariant.
	slowPushes() int64
	// onSlowPush installs a hook called on each fast-path miss (nil
	// clears). Installed at build time, before any producer runs.
	onSlowPush(fn func())
}

// queueModeChannel, when set, forces channel-backed queues everywhere in
// subsequently built networks. See UseChannelQueues.
var queueModeChannel atomic.Bool

// UseChannelQueues forces every subsequently built network to carry
// buffers on Go channels instead of selecting lock-free SPSC rings for
// single-producer single-consumer segments. It exists for A/B comparison —
// the ring-vs-channel property tests and the hand-off benchmarks — and as
// an escape hatch; the two builds are semantically identical. It returns
// the previous setting; restore it when done:
//
//	prev := fg.UseChannelQueues(true)
//	defer fg.UseChannelQueues(prev)
func UseChannelQueues(on bool) bool { return queueModeChannel.Swap(on) }

// newQueue creates a queue of the given capacity: a lock-free SPSC ring
// when spscOK says the queue has one producing and one consuming
// goroutine, a buffered channel otherwise (or when UseChannelQueues is in
// force).
func newQueue(capacity int, spscOK bool) queue {
	if spscOK && !queueModeChannel.Load() {
		return &ringQueue{r: spsc.New[*Buffer](capacity)}
	}
	return &chanQueue{ch: make(chan *Buffer, capacity)}
}

// slowCounter is the shared invariant-violation bookkeeping of both queue
// implementations.
type slowCounter struct {
	slow   atomic.Int64
	onSlow atomic.Pointer[func()]
}

func (c *slowCounter) noteSlow() {
	c.slow.Add(1)
	if fn := c.onSlow.Load(); fn != nil {
		(*fn)()
	}
}

func (c *slowCounter) slowPushes() int64 { return c.slow.Load() }

func (c *slowCounter) onSlowPush(fn func()) {
	if fn == nil {
		c.onSlow.Store(nil)
		return
	}
	c.onSlow.Store(&fn)
}

// chanQueue is the channel-backed implementation.
type chanQueue struct {
	ch chan *Buffer
	slowCounter
}

func (q *chanQueue) push(b *Buffer, done <-chan struct{}) error {
	select {
	case q.ch <- b:
		return nil
	default:
	}
	// The queue should never fill by construction; record the breach, then
	// guard against abort rather than blocking forever.
	q.noteSlow()
	select {
	case q.ch <- b:
		return nil
	case <-done:
		return errShutdown
	}
}

func (q *chanQueue) pushN(bs []*Buffer, done <-chan struct{}) error {
	for _, b := range bs {
		if err := q.push(b, done); err != nil {
			return err
		}
	}
	return nil
}

func (q *chanQueue) pop(done <-chan struct{}) (*Buffer, error) {
	select {
	case b := <-q.ch:
		return b, nil
	default:
	}
	select {
	case b := <-q.ch:
		return b, nil
	case <-done:
		return nil, errShutdown
	}
}

func (q *chanQueue) tryPop() (*Buffer, bool) {
	select {
	case b := <-q.ch:
		return b, true
	default:
		return nil, false
	}
}

func (q *chanQueue) len() int { return len(q.ch) }
func (q *chanQueue) cap() int { return cap(q.ch) }

// ringQueue is the lock-free SPSC implementation.
type ringQueue struct {
	r *spsc.Ring[*Buffer]
	slowCounter
}

func (q *ringQueue) push(b *Buffer, done <-chan struct{}) error {
	if q.r.TryPush(b) {
		return nil
	}
	q.noteSlow()
	if err := q.r.Push(b, done); err != nil {
		return errShutdown
	}
	return nil
}

func (q *ringQueue) pushN(bs []*Buffer, done <-chan struct{}) error {
	sent := q.r.TryPushN(bs)
	for sent < len(bs) {
		// The batch did not fit — the same invariant breach as a blocking
		// push, counted once per stalled remainder.
		q.noteSlow()
		if err := q.r.Push(bs[sent], done); err != nil {
			return errShutdown
		}
		sent++
		sent += q.r.TryPushN(bs[sent:])
	}
	return nil
}

func (q *ringQueue) pop(done <-chan struct{}) (*Buffer, error) {
	if b, ok := q.r.TryPop(); ok {
		return b, nil
	}
	b, err := q.r.Pop(done)
	if err != nil {
		return nil, errShutdown
	}
	return b, nil
}

func (q *ringQueue) tryPop() (*Buffer, bool) { return q.r.TryPop() }

func (q *ringQueue) len() int { return q.r.Len() }
func (q *ringQueue) cap() int { return q.r.Cap() }
