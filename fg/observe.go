package fg

import "sync"

// An Observe bundles the observability hooks a program hands to code that
// builds networks on its behalf — the sorting programs' configs and the
// experiment harness each carry one. The zero value (and a nil pointer)
// observes nothing and costs nothing; set only the pieces wanted. One
// Observe is typically shared by every network of a run, so the passes
// land on one trace timeline and one metrics registry.
type Observe struct {
	// Tracer, if set, is attached to each network before Run.
	Tracer *Tracer
	// Flight, if set, is attached to each network before Run: the last few
	// thousand events stay in its ring as a black box even when Tracer is
	// nil (see FlightRecorder).
	Flight *FlightRecorder
	// Metrics, if set, has each network registered before Run, so a scrape
	// of the registry mid-run sees the network's live counters. A Tracer in
	// the same bundle is registered too, surfacing fg_trace_dropped_total.
	Metrics *MetricsRegistry
	// Watchdog, if set, starts a progress watchdog on each network for the
	// duration of its Run (see Network.Watch). The config is shared;
	// OnStall may be called by several networks' watchdogs concurrently.
	Watchdog *WatchdogConfig
	// OnStats, if set, receives each network's final snapshot right after
	// its Run returns. Programs that run several networks concurrently (one
	// per simulated cluster node) call it concurrently; the callback must
	// be safe for that.
	OnStats func(NetworkStats)
}

// AttachTuner registers an auto-tuner with the bundle's metrics registry,
// surfacing its adjustment counter and knob positions in /metrics and in
// the cluster telemetry records built from the registry. Programs call it
// right after NewAutoTuner; nil receivers, tuners, and registries are all
// safe no-ops (and registering twice is idempotent).
func (o *Observe) AttachTuner(t *AutoTuner) {
	if o == nil || t == nil || o.Metrics == nil {
		return
	}
	o.Metrics.RegisterTuner(t)
}

// Attach wires the bundle into nw: the tracer and flight recorder are
// attached, the network (and tracer) registered with the metrics registry,
// and the watchdog started, all before Run. The returned finish function
// is to be called (typically deferred) once Run has returned; it stops the
// watchdog and delivers the final snapshot to OnStats — exactly once, even
// if called again (a runner that both defers it and calls it on an error
// path, or a Run that returns a *PanicError, must not double-report).
// Attach on a nil Observe is a no-op, and the finish function is never
// nil:
//
//	finish := cfg.Observe.Attach(nw)
//	defer finish()
//	err := nw.Run()
func (o *Observe) Attach(nw *Network) func() {
	if o == nil {
		return func() {}
	}
	if o.Tracer != nil {
		nw.SetTracer(o.Tracer)
	}
	if o.Flight != nil {
		nw.SetFlightRecorder(o.Flight)
	}
	if o.Metrics != nil {
		o.Metrics.RegisterNetwork(nw)
		o.Metrics.RegisterTracer(o.Tracer)
	}
	var dog *Watchdog
	if o.Watchdog != nil {
		dog = nw.Watch(*o.Watchdog)
	}
	fn := o.OnStats
	var once sync.Once
	return func() {
		once.Do(func() {
			if dog != nil {
				dog.Stop()
			}
			if fn != nil {
				fn(nw.Stats())
			}
		})
	}
}
