package fg

// An Observe bundles the observability hooks a program hands to code that
// builds networks on its behalf — the sorting programs' configs and the
// experiment harness each carry one. The zero value (and a nil pointer)
// observes nothing and costs nothing; set only the pieces wanted. One
// Observe is typically shared by every network of a run, so the passes
// land on one trace timeline and one metrics registry.
type Observe struct {
	// Tracer, if set, is attached to each network before Run.
	Tracer *Tracer
	// Metrics, if set, has each network registered before Run, so a scrape
	// of the registry mid-run sees the network's live counters.
	Metrics *MetricsRegistry
	// OnStats, if set, receives each network's final snapshot right after
	// its Run returns. Programs that run several networks concurrently (one
	// per simulated cluster node) call it concurrently; the callback must
	// be safe for that.
	OnStats func(NetworkStats)
}

// Attach wires the bundle into nw: the tracer is attached and the network
// registered with the metrics registry, both before Run. The returned
// finish function is to be called (typically deferred) once Run has
// returned; it delivers the final snapshot to OnStats. Attach on a nil
// Observe is a no-op, and the finish function is never nil:
//
//	finish := cfg.Observe.Attach(nw)
//	defer finish()
//	err := nw.Run()
func (o *Observe) Attach(nw *Network) func() {
	if o == nil {
		return func() {}
	}
	if o.Tracer != nil {
		nw.SetTracer(o.Tracer)
	}
	if o.Metrics != nil {
		o.Metrics.RegisterNetwork(nw)
	}
	fn := o.OnStats
	if fn == nil {
		return func() {}
	}
	return func() { fn(nw.Stats()) }
}
