package fg

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestBufferAccessors(t *testing.T) {
	b := &Buffer{Data: make([]byte, 16), pipe: &Pipeline{name: "p"}}
	if b.Cap() != 16 {
		t.Errorf("Cap = %d", b.Cap())
	}
	copy(b.Data, "hello")
	b.N = 5
	if string(b.Bytes()) != "hello" {
		t.Errorf("Bytes = %q", b.Bytes())
	}
	if b.Pipeline().Name() != "p" {
		t.Error("Pipeline accessor wrong")
	}
	if !strings.Contains(b.String(), "5/16") {
		t.Errorf("String = %q", b.String())
	}
	cb := &Buffer{caboose: true, pipe: b.pipe}
	if !strings.Contains(cb.String(), "caboose") {
		t.Errorf("caboose String = %q", cb.String())
	}
}

func TestAuxAllocatedOnceAndRetained(t *testing.T) {
	b := &Buffer{Data: make([]byte, 8)}
	a1 := b.Aux()
	a2 := b.Aux()
	if &a1[0] != &a2[0] {
		t.Error("Aux reallocated on second call")
	}
	if len(a1) != 8 {
		t.Errorf("Aux length = %d", len(a1))
	}
}

func TestSwapAuxPreservesNAndContent(t *testing.T) {
	b := &Buffer{Data: []byte("abcdefgh")}
	aux := b.Aux()
	copy(aux, "ABCDEFGH")
	b.N = 3
	b.SwapAux()
	if string(b.Bytes()) != "ABC" {
		t.Errorf("after swap Bytes = %q", b.Bytes())
	}
	b.SwapAux() // swap back
	if string(b.Bytes()) != "abc" {
		t.Errorf("after double swap Bytes = %q", b.Bytes())
	}
}

func TestResetClearsRoundState(t *testing.T) {
	b := &Buffer{Data: make([]byte, 4)}
	b.N = 4
	b.Meta = "junk"
	b.Data = b.Data[:2]
	b.reset(7)
	if b.N != 0 || b.Round != 7 || b.Meta != nil || len(b.Data) != 4 {
		t.Errorf("reset left %+v", b)
	}
}

// TestRandomLinearPipelinesProperty: any linear pipeline configuration
// delivers every round to the last stage exactly once and in order.
func TestRandomLinearPipelinesProperty(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rounds := rng.Intn(60)
		buffers := 1 + rng.Intn(5)
		stages := 1 + rng.Intn(5)
		nw := NewNetwork("prop")
		p := nw.AddPipeline("main", Buffers(buffers), BufferBytes(8), Rounds(rounds))
		for s := 0; s < stages; s++ {
			p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
		}
		var mu sync.Mutex
		var got []int
		p.AddStage("last", func(ctx *Ctx, b *Buffer) error {
			mu.Lock()
			got = append(got, b.Round)
			mu.Unlock()
			return nil
		})
		if err := nw.Run(); err != nil {
			return false
		}
		if len(got) != rounds {
			return false
		}
		for i, r := range got {
			if r != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRandomDisjointPipelinesProperty: several pipelines with arbitrary
// shapes in one network all complete with exact round counts.
func TestRandomDisjointPipelinesProperty(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPipes := 1 + rng.Intn(4)
		nw := NewNetwork("props")
		counts := make([]int64, nPipes)
		wants := make([]int64, nPipes)
		var mu sync.Mutex
		for i := 0; i < nPipes; i++ {
			i := i
			rounds := rng.Intn(40)
			wants[i] = int64(rounds)
			p := nw.AddPipeline("p", Buffers(1+rng.Intn(4)), Rounds(rounds))
			for s := rng.Intn(3); s >= 0; s-- {
				p.AddStage("s", func(ctx *Ctx, b *Buffer) error {
					if s == 0 { // closure quirk guard: count in one stage only
						return nil
					}
					return nil
				})
			}
			p.AddStage("count", func(ctx *Ctx, b *Buffer) error {
				mu.Lock()
				counts[i]++
				mu.Unlock()
				return nil
			})
		}
		if err := nw.Run(); err != nil {
			return false
		}
		for i := range counts {
			if counts[i] != wants[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsFlagsSharedAndVirtual(t *testing.T) {
	nw := NewNetwork("flags")
	vg := nw.AddVirtualGroup("verts")
	a := vg.AddPipeline("a", Buffers(1), BufferBytes(8), Rounds(2))
	b := vg.AddPipeline("b", Buffers(1), BufferBytes(8), Rounds(2))
	fill := func(ctx *Ctx, bf *Buffer) error {
		bf.N = 1
		return nil
	}
	a.AddStage("read", fill)
	b.AddStage("read", fill)
	// The shared stage drains both pipelines fully.
	drain := NewStage("drain2", func(ctx *Ctx) error {
		for {
			bb, ok := ctx.AcceptFrom(a)
			if !ok {
				break
			}
			ctx.Convey(bb)
		}
		for {
			bb, ok := ctx.AcceptFrom(b)
			if !ok {
				break
			}
			ctx.Convey(bb)
		}
		return nil
	})
	a.Add(drain)
	b.Add(drain)
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	var sawVirtual, sawShared bool
	for _, s := range st.Stages {
		if s.Stage == "read" && s.Virtual {
			sawVirtual = true
		}
		if s.Stage == "drain2" && s.Shared {
			sawShared = true
		}
	}
	if !sawVirtual {
		t.Error("virtual read stage not flagged")
	}
	if !sawShared {
		t.Error("shared drain stage not flagged")
	}
}
