package fg

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Self-tuning pipeline scheduler. An FG program fixes two kinds of knob at
// build time: the intra-buffer parallelism of its compute stages (how many
// workers a multicore kernel uses per round) and the number of buffers each
// pipeline circulates. Both are easy to mis-set — a Parallelism copied from
// another machine, a buffer count tuned for a different disk — and the cost
// is silent: the run completes, just slower. The AutoTuner closes the loop
// at run time instead. A sampler goroutine snapshots Network.Stats on an
// interval, asks Bottleneck() which stage governs the wall clock, and
// nudges the knobs: the governing stage's worker knob is raised toward Max
// while it stays the bottleneck, persistently idle stages' knobs are
// lowered toward Min, and each pipeline's circulating-buffer count follows
// pool occupancy (raised when the pool runs dry, lowered when buffers sit
// idle tick after tick).
//
// Worker knobs only matter to stages that read them: a stage function
// fetches its Knob once at build time and calls Workers() each round (one
// atomic load). dsort and colsort wire their sort/permute/merge kernels
// this way when Config.AutoTune / Plan.AutoTune is enabled.
//
// Buffer tuning needs no cooperation from stages: the tuner calls
// Pipeline.SetEffectiveBuffers, and the source parks or re-injects pool
// buffers on its recycle path. Memory stays bounded by the build-time
// Buffers count — the tuner only chooses how much of it circulates.

// AutoTune bounds and paces an AutoTuner. The zero value is disabled;
// Enabled reports whether any field is set.
type AutoTune struct {
	// Min and Max bound every worker knob. Min defaults to 1; Max defaults
	// to GOMAXPROCS.
	Min, Max int
	// Interval is the sampling period; default 100ms when enabled.
	Interval time.Duration
}

// Enabled reports whether the configuration asks for tuning at all.
func (t AutoTune) Enabled() bool { return t.Min != 0 || t.Max != 0 || t.Interval != 0 }

// DefaultAutoTune returns the standard enabled configuration: workers free
// to move anywhere in [1, GOMAXPROCS], sampled every 100ms.
func DefaultAutoTune() AutoTune {
	return AutoTune{Min: 1, Max: runtime.GOMAXPROCS(0), Interval: 100 * time.Millisecond}
}

func (t AutoTune) withDefaults() AutoTune {
	if t.Min <= 0 {
		t.Min = 1
	}
	if t.Max <= 0 {
		t.Max = runtime.GOMAXPROCS(0)
	}
	if t.Max < t.Min {
		t.Max = t.Min
	}
	if t.Interval <= 0 {
		t.Interval = 100 * time.Millisecond
	}
	return t
}

// A Knob is one stage's tunable worker count. Stage functions read it with
// Workers (one atomic load per round); the tuner adjusts it between rounds.
type Knob struct {
	name    string
	workers atomic.Int32
}

// Workers returns the knob's current worker count. On a nil knob (no tuner
// configured) it returns 0, which the multicore kernels read as "use all
// cores" — callers that want a fixed untuned value keep passing it
// directly.
func (k *Knob) Workers() int {
	if k == nil {
		return 0
	}
	return int(k.workers.Load())
}

// An AutoTuner owns a set of worker knobs and, once attached to running
// networks with Tune, the sampling loop that adjusts them. All methods are
// nil-safe: a nil tuner hands out nil knobs and a no-op stop function, so
// call sites need no conditionals.
type AutoTuner struct {
	cfg AutoTune

	mu    sync.Mutex
	knobs map[string]*Knob

	adjustments atomic.Int64
	onAdjust    atomic.Pointer[func(knob string, from, to int)]
}

// NewAutoTuner creates a tuner, or returns nil when the configuration is
// disabled — the nil tuner is the documented "tuning off" object.
func NewAutoTuner(cfg AutoTune) *AutoTuner {
	if !cfg.Enabled() {
		return nil
	}
	return &AutoTuner{cfg: cfg.withDefaults(), knobs: map[string]*Knob{}}
}

// Knob returns the tuner's knob for the named stage, creating it at the
// given initial worker count (clamped to [Min, Max]; initial <= 0 means
// "all cores" and maps to Max). Asking again for the same name returns the
// same knob. On a nil tuner it returns nil — and nil.Workers() means
// untuned.
func (t *AutoTuner) Knob(stage string, initial int) *Knob {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if k, ok := t.knobs[stage]; ok {
		return k
	}
	if initial <= 0 || initial > t.cfg.Max {
		initial = t.cfg.Max
	}
	if initial < t.cfg.Min {
		initial = t.cfg.Min
	}
	k := &Knob{name: stage}
	k.workers.Store(int32(initial))
	t.knobs[stage] = k
	return k
}

// KnobState is one knob's position in a tuner snapshot.
type KnobState struct {
	Stage   string `json:"stage"`
	Workers int    `json:"workers"`
}

// KnobStates returns every knob's current position, sorted by stage name —
// the snapshot the metrics registry and the cluster telemetry plane ship.
// Nil-safe: a nil tuner returns nil.
func (t *AutoTuner) KnobStates() []KnobState {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]KnobState, 0, len(t.knobs))
	for name, k := range t.knobs {
		out = append(out, KnobState{Stage: name, Workers: int(k.workers.Load())})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// Adjustments returns how many knob or buffer changes the tuner has made.
func (t *AutoTuner) Adjustments() int64 {
	if t == nil {
		return 0
	}
	return t.adjustments.Load()
}

// OnAdjust installs a hook called after every adjustment (worker knobs and
// effective-buffer changes alike; for the latter, knob is
// "buffers:<pipeline>"). It runs on the sampling goroutine. Nil clears.
func (t *AutoTuner) OnAdjust(fn func(knob string, from, to int)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.onAdjust.Store(nil)
		return
	}
	t.onAdjust.Store(&fn)
}

func (t *AutoTuner) noteAdjust(knob string, from, to int) {
	t.adjustments.Add(1)
	if fn := t.onAdjust.Load(); fn != nil {
		(*fn)(knob, from, to)
	}
}

// Tuning thresholds. The policy is deliberately conservative — one step
// per knob per tick, with streaks required before taking capacity away —
// because a wrong "more" costs little (bounded by Max and the pool size)
// while a wrong "less" serializes the pipeline.
const (
	// tuneHighUtil: the bottleneck stage is raised while its utilization
	// (work/wall) exceeds this.
	tuneHighUtil = 0.5
	// tuneIdleUtil: a stage below this utilization is a candidate for
	// lowering.
	tuneIdleUtil = 0.15
	// tuneStreak: consecutive ticks a condition must hold before the tuner
	// takes capacity away (lowering workers or parking buffers).
	tuneStreak = 3
	// tuneIdleBuffers: the pool-idle count at or above which a tick counts
	// toward the buffer-lowering streak.
	tuneIdleBuffers = 2
)

// Tune attaches the tuner to a network and starts the sampling loop. Call
// it after the network is built (any time before or during Run; the loop
// idles until stats flow) and defer the returned stop function. One tuner
// may drive several networks — dsort runs disjoint send and receive
// networks per pass — each getting its own sampling goroutine but sharing
// the knob table. On a nil tuner, Tune is a no-op returning a no-op stop.
func (t *AutoTuner) Tune(nw *Network) (stop func()) {
	if t == nil || nw == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	var once sync.Once
	go t.run(nw, stopCh)
	return func() { once.Do(func() { close(stopCh) }) }
}

func (t *AutoTuner) run(nw *Network, stop <-chan struct{}) {
	ticker := time.NewTicker(t.cfg.Interval)
	defer ticker.Stop()
	idleStreak := map[string]int{} // per-knob low-utilization streak
	parkStreak := map[string]int{} // per-pipeline pool-idle streak
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if nw.runState.Load() != runStateRunning {
			continue
		}
		st := nw.Stats()
		if st.Wall <= 0 {
			continue
		}
		bn := st.Bottleneck()
		t.tuneWorkers(st, bn, idleStreak)
		t.tuneBuffers(nw, st, parkStreak)
	}
}

// tuneWorkers raises the governing stage's knob and lowers persistently
// idle ones.
func (t *AutoTuner) tuneWorkers(st NetworkStats, bn BottleneckReport, idleStreak map[string]int) {
	t.mu.Lock()
	knobs := make(map[string]*Knob, len(t.knobs))
	for name, k := range t.knobs {
		knobs[name] = k
	}
	t.mu.Unlock()
	for _, s := range st.Stages {
		k, ok := knobs[s.Stage]
		if !ok {
			continue
		}
		util := float64(s.Work) / float64(st.Wall)
		cur := int(k.workers.Load())
		switch {
		case s.Stage == bn.Stage && util > tuneHighUtil:
			// The stage governs the wall clock and is nearly always busy:
			// give its kernel another worker.
			idleStreak[s.Stage] = 0
			if cur < t.cfg.Max {
				k.workers.Store(int32(cur + 1))
				t.noteAdjust(s.Stage, cur, cur+1)
			}
		case s.Stage != bn.Stage && util < tuneIdleUtil:
			// The stage barely works; after a streak of idle ticks, take a
			// worker back so it stops contending with the bottleneck.
			idleStreak[s.Stage]++
			if idleStreak[s.Stage] >= tuneStreak && cur > t.cfg.Min {
				idleStreak[s.Stage] = 0
				k.workers.Store(int32(cur - 1))
				t.noteAdjust(s.Stage, cur, cur-1)
			}
		default:
			idleStreak[s.Stage] = 0
		}
	}
}

// tuneBuffers follows pool occupancy: a dry pool means the pipeline wants
// more circulating buffers (raise immediately — starving the source
// serializes the whole pipeline), a persistently slack pool means rounds
// are cheap enough that extra buffers only add latency and cache pressure
// (park one after a streak).
func (t *AutoTuner) tuneBuffers(nw *Network, st NetworkStats, parkStreak map[string]int) {
	byName := map[string]PipelineStats{}
	for _, p := range st.Pipelines {
		byName[p.Name] = p
	}
	for _, g := range nw.groups {
		if !g.built.Load() {
			continue
		}
		for _, p := range g.pipes {
			ps, ok := byName[p.name]
			if !ok || p.nBuffers <= 1 {
				continue
			}
			eff := p.EffectiveBuffers()
			floor := 2
			if floor > p.nBuffers {
				floor = p.nBuffers
			}
			switch {
			case ps.PoolIdle == 0 && eff < p.nBuffers:
				parkStreak[p.name] = 0
				p.SetEffectiveBuffers(eff + 1)
				t.noteAdjust("buffers:"+p.name, eff, eff+1)
			case ps.PoolIdle >= tuneIdleBuffers && eff > floor:
				parkStreak[p.name]++
				if parkStreak[p.name] >= tuneStreak {
					parkStreak[p.name] = 0
					p.SetEffectiveBuffers(eff - 1)
					t.noteAdjust("buffers:"+p.name, eff, eff-1)
				}
			default:
				parkStreak[p.name] = 0
			}
		}
	}
}

// String renders the tuner's current knob settings as one log line.
func (t *AutoTuner) String() string {
	if t == nil {
		return "autotune: off"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := fmt.Sprintf("autotune: [%d,%d] every %v, %d adjustments",
		t.cfg.Min, t.cfg.Max, t.cfg.Interval, t.adjustments.Load())
	for name, k := range t.knobs {
		s += fmt.Sprintf(" %s=%d", name, k.workers.Load())
	}
	return s
}
