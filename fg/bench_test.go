package fg

import (
	"fmt"
	"testing"
	"time"

	"github.com/fg-go/fg/internal/spsc"
)

// benchPipeline measures raw framework overhead: rounds through a pipeline
// of trivial stages.
func benchPipeline(b *testing.B, stages, buffers int) {
	b.Helper()
	nw := NewNetwork("bench")
	p := nw.AddPipeline("main", Buffers(buffers), BufferBytes(64), Rounds(b.N))
	for s := 0; s < stages; s++ {
		p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	}
	b.ResetTimer()
	if err := nw.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPipelineRound3Stages(b *testing.B)   { benchPipeline(b, 3, 4) }
func BenchmarkPipelineRound8Stages(b *testing.B)   { benchPipeline(b, 8, 4) }
func BenchmarkPipelineRoundOneBuffer(b *testing.B) { benchPipeline(b, 3, 1) }

// BenchmarkObservability pins the cost of the observability subsystem on
// the stage-runner hot path. "off" is the default configuration — no
// tracer, no registry — and must match the plain pipeline benchmarks;
// "traced" attaches a Tracer and "metered" registers the network with a
// scraping registry mid-run.
func BenchmarkObservability(b *testing.B) {
	build := func(rounds int) *Network {
		nw := NewNetwork("bench")
		p := nw.AddPipeline("main", Buffers(4), BufferBytes(64), Rounds(rounds))
		for s := 0; s < 3; s++ {
			p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
		}
		return nw
	}
	b.Run("off", func(b *testing.B) {
		nw := build(b.N)
		b.ResetTimer()
		if err := nw.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("traced", func(b *testing.B) {
		nw := build(b.N)
		nw.SetTracer(NewTracer(1 << 20))
		b.ResetTimer()
		if err := nw.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("metered", func(b *testing.B) {
		nw := build(b.N)
		r := NewMetricsRegistry()
		r.RegisterNetwork(nw)
		stop := make(chan struct{})
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Samples()
				}
			}
		}()
		b.ResetTimer()
		if err := nw.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		close(stop)
	})
}

// BenchmarkQueueHandoff pins the raw cost of one inter-stage hand-off on
// each queue implementation: a producer and a consumer goroutine ping-pong
// one buffer through a forward and a return queue, so every iteration is
// two pushes and two pops on the fast path — exactly the steady state of a
// straight-line pipeline. The buffer payload size is carried along to show
// the hand-off cost is pointer-sized regardless. The ring's steady state
// must stay at 0 allocs/op (enforced by cmd/benchgate against the
// committed baseline).
func BenchmarkQueueHandoff(b *testing.B) {
	impls := []struct {
		name string
		mk   func() queue
	}{
		{"chan", func() queue { return &chanQueue{ch: make(chan *Buffer, 4)} }},
		{"ring", func() queue { return &ringQueue{r: spsc.New[*Buffer](4)} }},
	}
	for _, impl := range impls {
		for _, size := range []int{16, 64 << 10} {
			name := fmt.Sprintf("%s-16B", impl.name)
			if size > 16 {
				name = fmt.Sprintf("%s-64KiB", impl.name)
			}
			b.Run(name, func(b *testing.B) {
				fwd, ret := impl.mk(), impl.mk()
				done := make(chan struct{})
				consumerDone := make(chan struct{})
				go func() {
					defer close(consumerDone)
					for {
						buf, err := fwd.pop(done)
						if err != nil || buf.caboose {
							return
						}
						if ret.push(buf, done) != nil {
							return
						}
					}
				}()
				buf := &Buffer{Data: make([]byte, size)}
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := fwd.push(buf, done); err != nil {
						b.Fatal(err)
					}
					var err error
					if buf, err = ret.pop(done); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				_ = fwd.push(&Buffer{caboose: true}, done)
				<-consumerDone
			})
		}
	}
}

// BenchmarkAutotuneOverhead pins the cost of the self-tuning scheduler on
// the same trivial pipeline as BenchmarkObservability: "off" is the plain
// build (no tuner — and must match BenchmarkObservability/off), "on" runs
// with an attached AutoTuner sampling at its default interval and a knob
// read by every round — the configuration -autotune enables.
func BenchmarkAutotuneOverhead(b *testing.B) {
	build := func(rounds int, k *Knob) *Network {
		nw := NewNetwork("bench")
		p := nw.AddPipeline("main", Buffers(4), BufferBytes(64), Rounds(rounds))
		for s := 0; s < 3; s++ {
			p.AddStage("s", func(ctx *Ctx, b *Buffer) error {
				_ = k.Workers()
				return nil
			})
		}
		return nw
	}
	b.Run("off", func(b *testing.B) {
		nw := build(b.N, nil) // nil knob: the untuned one-branch read
		b.ReportAllocs()
		b.ResetTimer()
		if err := nw.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("on", func(b *testing.B) {
		tn := NewAutoTuner(AutoTune{Min: 1, Max: 4, Interval: 100 * time.Millisecond})
		nw := build(b.N, tn.Knob("s", 1))
		defer tn.Tune(nw)()
		b.ReportAllocs()
		b.ResetTimer()
		if err := nw.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkVirtualGroup measures the shared-thread dispatch of k virtual
// pipelines against the same rounds through plain pipelines.
func BenchmarkVirtualGroup(b *testing.B) {
	for _, k := range []int{4, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rounds := b.N/k + 1
			nw := NewNetwork("bench")
			vg := nw.AddVirtualGroup("g")
			for i := 0; i < k; i++ {
				p := vg.AddPipeline(fmt.Sprintf("p%d", i), Buffers(2), BufferBytes(8), Rounds(rounds))
				p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
			}
			b.ResetTimer()
			if err := nw.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkForkJoin measures fork routing plus join collapse overhead.
func BenchmarkForkJoin(b *testing.B) {
	nw := NewNetwork("bench")
	p := nw.AddPipeline("main", Buffers(4), BufferBytes(8), Rounds(b.N))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error { return nil })
	fork := p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) { return b.Round & 1, nil })
	fork.Branch(0).AddStage("a", func(ctx *Ctx, b *Buffer) error { return nil })
	fork.Branch(1).AddStage("b", func(ctx *Ctx, b *Buffer) error { return nil })
	fork.Join()
	b.ResetTimer()
	if err := nw.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIntersectingAccept measures the merge-style AcceptFrom path with
// held-buffer bookkeeping across 8 virtual inputs.
func BenchmarkIntersectingAccept(b *testing.B) {
	const k = 8
	nw := NewNetwork("bench")
	vg := nw.AddVirtualGroup("in")
	rounds := b.N/k + 1
	pipes := make([]*Pipeline, k)
	for i := 0; i < k; i++ {
		pipes[i] = vg.AddPipeline(fmt.Sprintf("p%d", i), Buffers(2), BufferBytes(8), Rounds(rounds))
		pipes[i].AddStage("fill", func(ctx *Ctx, b *Buffer) error {
			b.N = 8
			return nil
		})
	}
	drain := NewStage("drain", func(ctx *Ctx) error {
		for i := 0; i < k; i++ {
			for {
				bb, ok := ctx.AcceptFrom(pipes[i])
				if !ok {
					break
				}
				ctx.Convey(bb)
			}
		}
		return nil
	})
	for _, p := range pipes {
		p.Add(drain)
	}
	b.ResetTimer()
	if err := nw.Run(); err != nil {
		b.Fatal(err)
	}
}
