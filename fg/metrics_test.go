package fg

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestServeMetricsMidRun holds a stage mid-round and scrapes the Prometheus
// endpoint while Run is in flight: the acceptance criterion that per-stage
// rounds/work/wait/occupancy are served live, not post-mortem.
func TestServeMetricsMidRun(t *testing.T) {
	nw := NewNetwork("live")
	p := nw.AddPipeline("main", Buffers(2), Rounds(4))
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	p.AddStage("gated", func(ctx *Ctx, b *Buffer) error {
		entered <- struct{}{}
		<-gate
		return nil
	})
	ms, err := nw.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	errc := make(chan error, 1)
	go func() { errc <- nw.Run() }()
	<-entered // the stage holds a buffer: the network is demonstrably mid-run

	body := scrape(t, "http://"+ms.Addr()+"/metrics")
	for _, want := range []string{
		`fg_network_running{network="live"} 1`,
		`fg_stage_rounds_total{network="live",pipeline="main",stage="gated"}`,
		`fg_stage_work_seconds_total{network="live",pipeline="main",stage="gated"}`,
		`fg_stage_wait_seconds_total{network="live",pipeline="main",stage="gated"}`,
		`fg_stage_queue_len{network="live",pipeline="main",stage="gated"}`,
		`fg_pipeline_pool_cap{network="live",pipeline="main"} 2`,
		"# TYPE fg_stage_rounds_total counter",
		"# TYPE fg_stage_queue_len gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("mid-run scrape missing %q in:\n%s", want, body)
		}
	}

	// expvar rides the same server.
	if vars := scrape(t, "http://"+ms.Addr()+"/debug/vars"); !strings.Contains(vars, "fg_network_wall_seconds") {
		t.Errorf("/debug/vars does not expose the fg samples")
	}

	close(gate)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	body = scrape(t, "http://"+ms.Addr()+"/metrics")
	for _, want := range []string{
		`fg_network_running{network="live"} 0`,
		`fg_stage_rounds_total{network="live",pipeline="main",stage="gated"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("post-run scrape missing %q in:\n%s", want, body)
		}
	}
}

func TestRegistryCollectorFunc(t *testing.T) {
	r := NewMetricsRegistry()
	r.RegisterFunc(func(emit EmitFunc) {
		emit("cluster_bytes_sent_total", map[string]string{"node": "0"}, 123)
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `cluster_bytes_sent_total{node="0"} 123`) {
		t.Errorf("collector sample missing:\n%s", b.String())
	}
}

func TestBottleneckReport(t *testing.T) {
	nw := NewNetwork("bn")
	p := nw.AddPipeline("main", Buffers(3), Rounds(8))
	p.AddStage("fast", func(ctx *Ctx, b *Buffer) error { return nil })
	p.AddStage("slow", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	p.AddStage("mid", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(500 * time.Microsecond)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	r := nw.Stats().Bottleneck()
	if r.Stage != "slow" {
		t.Fatalf("bottleneck = %q, want slow (%+v)", r.Stage, r)
	}
	if r.Wall == 0 || r.Utilization <= 0 {
		t.Errorf("report missing wall/utilization: %+v", r)
	}
	// slow (16ms) overlaps mid (4ms): wall must sit well below the 20ms sum,
	// so the overlap fraction is decisively positive.
	if r.Overlap <= 0.3 {
		t.Errorf("overlap = %.2f for a pipelined run, want > 0.3 (%+v)", r.Overlap, r)
	}
	if !strings.Contains(r.String(), "slow") {
		t.Errorf("String() does not name the stage: %s", r)
	}
}
